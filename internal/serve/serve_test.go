package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// fakeClock is the test stand-in for Options.Clock: time advances only when
// a test says so, so cadence and rate-bucket behavior are fully scripted.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testPipeline mirrors the full-artifact configuration cmd/experiments
// analyzes under, so determinism is pinned across every report section.
func testPipeline() analysis.Pipeline {
	vFilt := analysis.ValueOptions{JiffyBinKernel: true, MinSharePercent: 2, CollapseCountdowns: true}
	vUser := analysis.ValueOptions{UserOnly: true, MinSharePercent: 2}
	return analysis.Pipeline{
		Values:         analysis.ValueOptions{JiffyBinKernel: true, MinSharePercent: 2},
		ValuesFiltered: &vFilt,
		ValuesUser:     &vUser,
		OriginMinSets:  5,
	}
}

// producerTrace builds one producer's in-memory trace: ntimers interleaved
// timer lifecycles over a few shared origins, with the timer identities
// namespaced by producer so streams stay disjoint the way distinct hosts'
// streams are.
func producerTrace(producer, ntimers int) *trace.Buffer {
	b := trace.NewBuffer(ntimers * 2)
	origins := []string{"kernel/tcp", "firefox/poll", "svc/wait"}
	t0 := sim.Time(0)
	for i := 0; i < ntimers; i++ {
		id := uint64(producer+1)<<48 | uint64(i%97)
		origin := b.Origin(origins[(producer+i)%len(origins)])
		var flags trace.Flags
		if i%3 != 0 {
			flags = trace.FlagUser
		}
		timeout := sim.Duration(1+(producer+i)%4) * 50 * sim.Millisecond
		b.Log(trace.Record{T: t0, Op: trace.OpSet, TimerID: id, Timeout: int64(timeout),
			Origin: origin, PID: int32(producer), Flags: flags})
		endOp := trace.OpExpire
		if i%4 == 0 {
			endOp = trace.OpCancel
		}
		b.Log(trace.Record{T: t0 + sim.Time(timeout), Op: endOp, TimerID: id,
			Origin: origin, PID: int32(producer), Flags: flags})
		t0 += sim.Time(7 * sim.Millisecond)
	}
	return b
}

// replay pushes a Buffer through an HTTPSink to the service, re-interning
// origins, and fails the test on any sink-side drop or error.
func replay(t *testing.T, url, name string, b *trace.Buffer, batch int) {
	t.Helper()
	sink, err := trace.NewHTTPSink(url, name, trace.HTTPSinkOptions{
		BatchRecords: batch,
		Instance:     "test-" + name,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Records() {
		r.Origin = sink.Origin(b.OriginName(r.Origin))
		sink.Log(r)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("sink %s: %v", name, err)
	}
	if st := sink.Stats(); st.DroppedBatches != 0 || st.Failed {
		t.Fatalf("sink %s dropped batches: %+v", name, st)
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

// TestServeQuiesceDeterminism is the tentpole determinism pin: several
// producers stream concurrently in scrambled name order; once all streams
// have closed, the server's summary/origins/histograms must be
// byte-identical to the offline pipeline over the streams concatenated in
// lexicographic name order — the same bytes `timerstat` would print.
func TestServeQuiesceDeterminism(t *testing.T) {
	p := testPipeline()
	clk := newFakeClock()
	srv := New(Options{Pipeline: p, Clock: clk.now, Version: "test"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Deliberately not lexicographic: arrival order must not matter.
	names := []string{"host-02", "host-00", "host-03", "host-01"}
	bufs := map[string]*trace.Buffer{}
	for i, name := range names {
		bufs[name] = producerTrace(i, 3_000)
	}
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			replay(t, ts.URL, name, bufs[name], 512)
		}(name)
	}
	wg.Wait()

	// Oracle: one offline Run over the concatenation in name order.
	total := 0
	for _, b := range bufs {
		total += len(b.Records())
	}
	oracle := trace.NewBuffer(total)
	for _, name := range []string{"host-00", "host-01", "host-02", "host-03"} {
		b := bufs[name]
		for _, r := range b.Records() {
			r.Origin = oracle.Origin(b.OriginName(r.Origin))
			oracle.Log(r)
		}
	}
	rep, err := p.Run(oracle)
	if err != nil {
		t.Fatal(err)
	}

	checks := []struct {
		path string
		want []byte
	}{
		{"/api/summary", rep.SummaryJSON()},
		{"/api/origins", rep.OriginsJSON()},
		{"/api/histograms", rep.HistogramsJSON()},
	}
	for _, c := range checks {
		got := httpGet(t, ts.URL+c.path)
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: server bytes != offline bytes\nserver: %.200s\noffline: %.200s",
				c.path, got, c.want)
		}
	}

	// Quiesced: a second read must not remerge (cache hit on same gen).
	merges := srv.Metrics.Merges.Load()
	httpGet(t, ts.URL+"/api/summary")
	if got := srv.Metrics.Merges.Load(); got != merges {
		t.Errorf("quiesced re-read remerged: %d -> %d", merges, got)
	}

	var met MetricsSnapshot
	if err := json.Unmarshal(httpGet(t, ts.URL+"/api/metrics"), &met); err != nil {
		t.Fatal(err)
	}
	if met.StreamsClosed != uint64(len(names)) || met.StreamsOpen != 0 {
		t.Errorf("metrics streams: open=%d closed=%d want 0/%d",
			met.StreamsOpen, met.StreamsClosed, len(names))
	}
	if met.Version != "test" {
		t.Errorf("metrics version = %q", met.Version)
	}
	if met.IngestRecords != uint64(total) {
		t.Errorf("ingest_records = %d want %d", met.IngestRecords, total)
	}
}

// encodeStream renders a Buffer as one complete v2 stream (header..footer).
func encodeStream(t *testing.T, b *trace.Buffer) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := trace.NewStreamWriterSize(&buf, 256)
	for _, r := range b.Records() {
		r.Origin = sw.Origin(b.OriginName(r.Origin))
		sw.Log(r)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// post sends one raw ingest batch with protocol headers and returns the
// status code and body.
func post(t *testing.T, url, stream, instance string, seq uint64, body []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/api/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.HeaderStream, stream)
	req.Header.Set(trace.HeaderInstance, instance)
	req.Header.Set(trace.HeaderSeq, strconv.FormatUint(seq, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(msg)
}

// TestServeIngestProtocol pins the sequence-number contract: duplicate
// batches are acknowledged without re-applying, gaps and instance conflicts
// are 409s, unknown streams at non-zero seq are unrecoverable, and a decode
// error poisons the stream.
func TestServeIngestProtocol(t *testing.T) {
	clk := newFakeClock()
	srv := New(Options{Pipeline: testPipeline(), Clock: clk.now})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stream := encodeStream(t, producerTrace(0, 500))

	if code, msg := post(t, ts.URL, "", "i1", 0, stream); code != 400 {
		t.Fatalf("missing stream header: %d %s", code, msg)
	}
	if code, msg := post(t, ts.URL, "ghost", "i1", 3, stream); code != 409 {
		t.Fatalf("unknown stream at seq 3: %d %s", code, msg)
	}
	if code, msg := post(t, ts.URL, "s", "i1", 0, stream); code != 204 {
		t.Fatalf("first batch: %d %s", code, msg)
	}
	want := httpGet(t, ts.URL+"/api/summary")

	// Duplicate of an applied batch: acknowledged, state untouched.
	if code, msg := post(t, ts.URL, "s", "i1", 0, stream); code != 200 {
		t.Fatalf("dup batch: %d %s", code, msg)
	}
	if got := srv.Metrics.DupPosts.Load(); got != 1 {
		t.Errorf("dup posts = %d", got)
	}
	if got := httpGet(t, ts.URL+"/api/summary"); !bytes.Equal(got, want) {
		t.Error("duplicate batch changed the merged report")
	}

	if code, msg := post(t, ts.URL, "s", "i1", 5, stream); code != 409 {
		t.Fatalf("sequence gap: %d %s", code, msg)
	}
	if code, msg := post(t, ts.URL, "s", "i2", 1, stream); code != 409 {
		t.Fatalf("instance conflict: %d %s", code, msg)
	}

	// Garbage first batch poisons its stream; the next batch is refused
	// even at the right sequence number.
	if code, msg := post(t, ts.URL, "bad", "i1", 0, []byte("not a trace stream")); code != 400 {
		t.Fatalf("garbage batch: %d %s", code, msg)
	}
	if code, msg := post(t, ts.URL, "bad", "i1", 0, stream); code != 400 || !contains(msg, "poisoned") {
		t.Fatalf("poisoned stream accepted a batch: %d %s", code, msg)
	}

	// Oversized body is refused before decoding.
	big := New(Options{Pipeline: testPipeline(), Clock: clk.now, MaxBodyBytes: 64})
	tsBig := httptest.NewServer(big.Handler())
	defer tsBig.Close()
	if code, msg := post(t, tsBig.URL, "s", "i1", 0, stream); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s", code, msg)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestServeMergeCadence pins merge-on-query rate limiting: while a stream
// is live, repeated queries within the cadence serve the cached view;
// advancing the clock past the cadence remerges; closing every stream
// remerges immediately regardless of cadence.
func TestServeMergeCadence(t *testing.T) {
	clk := newFakeClock()
	srv := New(Options{Pipeline: testPipeline(), Clock: clk.now, MergeEvery: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A stream that never closes: header+records but no footer yet. Use two
	// sinks' worth by splitting a full stream before its footer... simpler:
	// send a full stream under one name (closed) and keep another open by
	// sending only the first batch of a two-batch stream.
	full := encodeStream(t, producerTrace(0, 300))
	if code, msg := post(t, ts.URL, "closed", "i1", 0, full); code != 204 {
		t.Fatalf("closed stream: %d %s", code, msg)
	}
	// Open stream: header only (no frames at all) keeps it live.
	if code, msg := post(t, ts.URL, "open", "i1", 0, full[:8]); code != 204 {
		t.Fatalf("open stream header: %d %s", code, msg)
	}

	httpGet(t, ts.URL+"/api/summary")
	m1 := srv.Metrics.Merges.Load()
	if m1 == 0 {
		t.Fatal("first query did not merge")
	}

	// New ingest makes the cache stale, but within the cadence a live
	// server keeps serving it.
	if code, msg := post(t, ts.URL, "closed2", "i1", 0, full); code != 204 {
		t.Fatalf("second stream: %d %s", code, msg)
	}
	clk.advance(time.Second)
	httpGet(t, ts.URL+"/api/summary")
	if got := srv.Metrics.Merges.Load(); got != m1 {
		t.Errorf("merged within cadence: %d -> %d", m1, got)
	}

	clk.advance(time.Minute)
	httpGet(t, ts.URL+"/api/summary")
	m2 := srv.Metrics.Merges.Load()
	if m2 != m1+1 {
		t.Errorf("cadence elapsed but merges %d -> %d", m1, m2)
	}

	// Close the open stream: remainder of the stream, then expect the next
	// query to remerge immediately even though the cadence has not elapsed.
	if code, msg := post(t, ts.URL, "open", "i1", 1, full[8:]); code != 204 {
		t.Fatalf("closing open stream: %d %s", code, msg)
	}
	clk.advance(time.Millisecond)
	httpGet(t, ts.URL+"/api/summary")
	if got := srv.Metrics.Merges.Load(); got != m2+1 {
		t.Errorf("quiesce did not merge immediately: %d -> %d", m2, got)
	}
}

// TestServeRatesAndStreams pins the rate ring and the stream listing under
// a scripted clock.
func TestServeRatesAndStreams(t *testing.T) {
	clk := newFakeClock()
	srv := New(Options{Pipeline: testPipeline(), Clock: clk.now, RateWindowSecs: 30})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b := producerTrace(0, 100)
	full := encodeStream(t, b)
	if code, msg := post(t, ts.URL, "a", "i1", 0, full); code != 204 {
		t.Fatalf("stream a: %d %s", code, msg)
	}
	clk.advance(3 * time.Second)
	if code, msg := post(t, ts.URL, "b", "i2", 0, full); code != 204 {
		t.Fatalf("stream b: %d %s", code, msg)
	}

	var rates ratesResponse
	if err := json.Unmarshal(httpGet(t, ts.URL+"/api/rates?window=5"), &rates); err != nil {
		t.Fatal(err)
	}
	if rates.WindowS != 5 || len(rates.Buckets) != 5 {
		t.Fatalf("window: %+v", rates)
	}
	nrec := uint64(len(b.Records()))
	last, first := rates.Buckets[4], rates.Buckets[1]
	if last.Records != nrec || first.Records != nrec {
		t.Errorf("rate buckets: first=%+v last=%+v want %d records each", first, last, nrec)
	}
	if rates.Buckets[2].Records != 0 || rates.Buckets[3].Records != 0 {
		t.Errorf("idle seconds not zero-filled: %+v", rates.Buckets)
	}
	if last.Set == 0 || last.Expired == 0 || last.Cancel == 0 {
		t.Errorf("op tallies empty: %+v", last)
	}

	var streams struct {
		Streams []streamJSON `json:"streams"`
	}
	if err := json.Unmarshal(httpGet(t, ts.URL+"/api/streams"), &streams); err != nil {
		t.Fatal(err)
	}
	if len(streams.Streams) != 2 || streams.Streams[0].Name != "a" || streams.Streams[1].Name != "b" {
		t.Fatalf("stream listing: %+v", streams)
	}
	a := streams.Streams[0]
	if !a.Closed || a.Records != nrec || a.Instance != "i1" || a.NextSeq != 1 {
		t.Errorf("stream a row: %+v", a)
	}
	if a.AgeS != 3 {
		t.Errorf("stream a age = %v want 3", a.AgeS)
	}
}

// TestServeDashboardServed pins that the embedded dashboard answers on /.
func TestServeDashboardServed(t *testing.T) {
	srv := New(Options{Pipeline: testPipeline(), Clock: newFakeClock().now})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := httpGet(t, ts.URL+"/")
	if !bytes.Contains(body, []byte("timerstudy live trace")) {
		t.Fatalf("dashboard body: %.120s", body)
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

// TestServeMaxStreams pins the stream-count limit.
func TestServeMaxStreams(t *testing.T) {
	clk := newFakeClock()
	srv := New(Options{Pipeline: testPipeline(), Clock: clk.now, MaxStreams: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	full := encodeStream(t, producerTrace(0, 50))
	for i := 0; i < 2; i++ {
		if code, msg := post(t, ts.URL, fmt.Sprintf("s%d", i), "i", 0, full); code != 204 {
			t.Fatalf("stream %d: %d %s", i, code, msg)
		}
	}
	if code, _ := post(t, ts.URL, "s2", "i", 0, full); code != 503 {
		t.Fatalf("over limit: %d", code)
	}
}
