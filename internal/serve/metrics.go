package serve

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Metrics is the service's self-observability: lock-free counters bumped on
// the ingest and merge paths, snapshotted with runtime gauges for
// /api/metrics and the loopback benchmark.
type Metrics struct {
	Posts         atomic.Uint64 // accepted ingest POSTs
	DupPosts      atomic.Uint64 // idempotent re-sends acknowledged
	Rejected      atomic.Uint64 // refused POSTs (gap, conflict, decode error, limits)
	IngestBytes   atomic.Uint64
	IngestRecords atomic.Uint64
	IngestFrames  atomic.Uint64
	StreamsOpened atomic.Uint64
	StreamsClosed atomic.Uint64
	Merges        atomic.Uint64
	MergeNSLast   atomic.Uint64
	MergeNSTotal  atomic.Uint64
	MergedRecords atomic.Uint64 // records covered by the latest merge
}

// MetricsSnapshot is the JSON shape of /api/metrics.
type MetricsSnapshot struct {
	Version string  `json:"version"`
	UptimeS float64 `json:"uptime_s"`

	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`

	Posts         uint64 `json:"ingest_posts"`
	DupPosts      uint64 `json:"ingest_dup_posts"`
	Rejected      uint64 `json:"ingest_rejected"`
	IngestBytes   uint64 `json:"ingest_bytes"`
	IngestRecords uint64 `json:"ingest_records"`
	IngestFrames  uint64 `json:"ingest_frames"`

	StreamsOpen   uint64 `json:"streams_open"`
	StreamsClosed uint64 `json:"streams_closed"`

	Merges        uint64  `json:"merges"`
	MergeLastMS   float64 `json:"merge_last_ms"`
	MergeTotalMS  float64 `json:"merge_total_ms"`
	MergedRecords uint64  `json:"merged_records"`

	IngestBytesPerSec   float64 `json:"ingest_bytes_per_sec"`
	IngestRecordsPerSec float64 `json:"ingest_records_per_sec"`
}

// Snapshot renders the counters plus runtime gauges. uptime is computed by
// the caller from its injected clock so the snapshot itself never reads the
// host clock.
func (m *Metrics) Snapshot(version string, uptime time.Duration) MetricsSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	opened, closed := m.StreamsOpened.Load(), m.StreamsClosed.Load()
	s := MetricsSnapshot{
		Version:        version,
		UptimeS:        uptime.Seconds(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		Posts:          m.Posts.Load(),
		DupPosts:       m.DupPosts.Load(),
		Rejected:       m.Rejected.Load(),
		IngestBytes:    m.IngestBytes.Load(),
		IngestRecords:  m.IngestRecords.Load(),
		IngestFrames:   m.IngestFrames.Load(),
		StreamsOpen:    opened - closed,
		StreamsClosed:  closed,
		Merges:         m.Merges.Load(),
		MergeLastMS:    float64(m.MergeNSLast.Load()) / 1e6,
		MergeTotalMS:   float64(m.MergeNSTotal.Load()) / 1e6,
		MergedRecords:  m.MergedRecords.Load(),
	}
	if up := uptime.Seconds(); up > 0 {
		s.IngestBytesPerSec = float64(s.IngestBytes) / up
		s.IngestRecordsPerSec = float64(s.IngestRecords) / up
	}
	return s
}
