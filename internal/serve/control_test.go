package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// hubRequest runs one request against a server's handler.
func hubRequest(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// TestCommandHubFlow drives the full relay: stage via POST /api/command,
// drain as the driver, report decisions, read them back from the log.
func TestCommandHubFlow(t *testing.T) {
	s := New(Options{Clock: newFakeClock().now})

	// Stage two commands; tickets are sequential.
	for i, want := range []uint64{1, 2} {
		w := hubRequest(t, s, http.MethodPost, "/api/command",
			CommandRequest{Kind: "spike", Host: "*", Arg: int64(4 + i), DurMS: 500})
		if w.Code != http.StatusAccepted {
			t.Fatalf("command %d: status %d: %s", i, w.Code, w.Body.String())
		}
		var resp struct {
			Ticket uint64 `json:"ticket"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Ticket != want {
			t.Fatalf("command %d: ticket %d (err %v), want %d", i, resp.Ticket, err, want)
		}
	}

	// A command without a kind is refused at the door.
	if w := hubRequest(t, s, http.MethodPost, "/api/command", CommandRequest{Host: "*"}); w.Code != http.StatusBadRequest {
		t.Fatalf("kindless command: status %d", w.Code)
	}
	// GET on a POST endpoint is refused.
	if w := hubRequest(t, s, http.MethodGet, "/api/command", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET command: status %d", w.Code)
	}

	// The driver drains both; a second drain finds nothing.
	w := hubRequest(t, s, http.MethodPost, "/api/command/drain", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("drain: status %d", w.Code)
	}
	var drained struct {
		Commands []StagedCommand `json:"commands"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &drained); err != nil {
		t.Fatalf("drain body: %v", err)
	}
	if len(drained.Commands) != 2 || drained.Commands[0].Ticket != 1 || drained.Commands[1].Arg != 5 {
		t.Fatalf("drained: %+v", drained.Commands)
	}
	w = hubRequest(t, s, http.MethodPost, "/api/command/drain", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &drained); err != nil || len(drained.Commands) != 0 {
		t.Fatalf("second drain not empty: %+v (err %v)", drained.Commands, err)
	}

	// The driver reports one accept, one reject, plus its snapshot.
	rep := ControlReport{
		Results: []CommandResult{
			{Ticket: 1, Accepted: true, Seq: 1, Window: 10},
			{Ticket: 2, Accepted: false, Reason: "spike factor must be >= 1"},
		},
		Snapshot: json.RawMessage(`{"window":10,"digest":12345}`),
		Patches:  json.RawMessage(`[{"kind":"spike"}]`),
	}
	if w := hubRequest(t, s, http.MethodPost, "/api/command/report", rep); w.Code != http.StatusNoContent {
		t.Fatalf("report: status %d: %s", w.Code, w.Body.String())
	}

	// The log shows both verdicts and the stored views; ?after filters.
	w = hubRequest(t, s, http.MethodGet, "/api/command/log", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("log: status %d", w.Code)
	}
	var lg struct {
		Staged   int             `json:"staged"`
		Reports  uint64          `json:"reports"`
		Results  []CommandResult `json:"results"`
		Snapshot json.RawMessage `json:"snapshot"`
		Patches  json.RawMessage `json:"patches"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &lg); err != nil {
		t.Fatalf("log body: %v", err)
	}
	if lg.Staged != 0 || lg.Reports != 1 || len(lg.Results) != 2 {
		t.Fatalf("log: %+v", lg)
	}
	if !lg.Results[0].Accepted || lg.Results[1].Accepted || lg.Results[1].Reason == "" {
		t.Fatalf("verdicts: %+v", lg.Results)
	}
	if string(lg.Snapshot) == "" || string(lg.Patches) == "" {
		t.Fatal("snapshot/patches not stored")
	}
	w = hubRequest(t, s, http.MethodGet, "/api/command/log?after=1", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &lg); err != nil || len(lg.Results) != 1 || lg.Results[0].Ticket != 2 {
		t.Fatalf("after=1: %+v (err %v)", lg.Results, err)
	}
}

// TestCommandHubBacklogBound: without a driver draining, the hub rejects
// rather than buffers without bound.
func TestCommandHubBacklogBound(t *testing.T) {
	s := New(Options{Clock: newFakeClock().now})
	for i := 0; i < maxStagedCommands; i++ {
		w := hubRequest(t, s, http.MethodPost, "/api/command", CommandRequest{Kind: "kill", Host: fmt.Sprintf("ws-%04d", i)})
		if w.Code != http.StatusAccepted {
			t.Fatalf("command %d: status %d", i, w.Code)
		}
	}
	if w := hubRequest(t, s, http.MethodPost, "/api/command", CommandRequest{Kind: "kill", Host: "ws-0000"}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap command: status %d", w.Code)
	}
}
