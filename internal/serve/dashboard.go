package serve

import (
	_ "embed"
	"net/http"
)

// dashboardHTML is the single-page dashboard: vanilla JS polling the JSON
// API, no external assets, so the whole UI ships inside the binary and
// works on an air-gapped host.
//
//go:embed dashboard.html
var dashboardHTML []byte

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}
