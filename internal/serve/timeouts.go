package serve

import "time"

// Live-service tunables. These are host wall-clock values (the service
// talks to real producers and real browsers), but the paper's Section 4
// critique of unexplained magic numbers applies to our own configuration
// too, so every value carries its provenance and the magictimeout gate
// polices this package.
const (
	// defaultMergeCadence rate-limits query-triggered global merges: a
	// merge deep-clones every live stream shard, so at most one per second
	// keeps dashboard auto-refresh (1–2 s period) fresh while bounding
	// merge work to a fixed fraction of ingest throughput. A fully
	// quiesced server merges immediately regardless, so the cadence never
	// delays the deterministic final report.
	defaultMergeCadence = 1 * time.Second

	// defaultRateWindowSecs sizes the per-second rate ring: five minutes
	// covers the dashboard's longest chart window ("30 seconds is not
	// enough" — but 300 is for a live rate plot) at one bucket per second.
	defaultRateWindowSecs = 300

	// defaultMaxBodyBytes caps one ingest POST. An HTTPSink batch at the
	// default 1<<14 records is ~640 KiB plus origin frames; 8 MiB accepts
	// maximal custom batches (maxChunkRecords would still be refused by
	// the decoder) while bounding per-connection buffering.
	defaultMaxBodyBytes = 8 << 20

	// defaultMaxStreams bounds distinct producer streams; 1024 matches the
	// fleet demo's host count and keeps worst-case resident shard state
	// (streams × live timers) within a small multiple of the fleet run
	// itself.
	defaultMaxStreams = 1024

	// defaultIngestConcurrency bounds POST bodies being read/decoded at
	// once; beyond it producers queue on their connections (backpressure).
	// 16 saturates decode on any host this runs on while capping transient
	// body buffers at 16 × defaultMaxBodyBytes.
	defaultIngestConcurrency = 16

	// maxStagedCommands bounds the steering backlog between driver polls.
	// The driver drains every barrier (milliseconds apart); hundreds of
	// staged commands means no driver is polling, and rejecting fast beats
	// buffering requests that will never apply.
	maxStagedCommands = 256

	// maxCommandResults bounds the decided-command ring served by
	// /api/command/log; matches the control plane's own patch buffer.
	maxCommandResults = 1024

	// maxCommandBody caps one steering POST body. A command is a few
	// hundred bytes; the largest report — a full maxCommandResults batch of
	// decisions plus a maximal patch feed at ~100 bytes per entry — stays
	// under 256 KiB. The trace-batch limit does not apply to the control
	// API.
	maxCommandBody = 256 << 10
)
