//go:build !race

package serve

// raceEnabled mirrors the -race build tag so memory-accounting tests can
// skip themselves under the instrumented runtime.
const raceEnabled = false
