package layers

import (
	"testing"

	"timerstudy/internal/sim"
)

func TestHealthyOpenIsFast(t *testing.T) {
	for _, p := range []Policy{Static, Budgeted, Adaptive} {
		w := NewWorld(1)
		if p == Adaptive {
			w.Warm(5)
		}
		o := w.OpenShare(p, FileServer, 5*sim.Second)
		if !o.OK {
			t.Fatalf("%v: %v", p, o)
		}
		// ~130 ms RTT: resolution + connect + negotiate ≈ 300-500 ms.
		if o.Elapsed > sim.Second {
			t.Errorf("%v: healthy open took %v", p, o.Elapsed)
		}
	}
}

func TestStaticDeadHostTakesOverAMinute(t *testing.T) {
	// The paper's headline pathology: the server answers in ~130 ms when
	// healthy, yet reporting its death takes over a minute.
	w := NewWorld(1)
	o := w.OpenShare(Static, DeadHost, 0)
	if o.OK {
		t.Fatalf("dead host opened: %v", o)
	}
	if o.Elapsed < sim.Minute {
		t.Fatalf("static policy reported failure after only %v; paper: over a minute", o.Elapsed)
	}
	if o.Elapsed > 3*sim.Minute {
		t.Fatalf("implausibly slow: %v", o.Elapsed)
	}
}

func TestStaticBadNameSlowerThanAnswer(t *testing.T) {
	// A typo: WINS and NetBT burn their full retry schedules even though
	// DNS said NXDOMAIN within milliseconds.
	w := NewWorld(1)
	o := w.OpenShare(Static, BadName, 0)
	if o.OK {
		t.Fatalf("bad name resolved: %v", o)
	}
	if o.Elapsed < 4*sim.Second {
		t.Fatalf("typo reported after %v; static schedules should take ≥4.5 s", o.Elapsed)
	}
	if o.Detail != "name resolution failed" {
		t.Fatalf("detail = %q", o.Detail)
	}
}

func TestBudgetedDeadlineHonored(t *testing.T) {
	w := NewWorld(1)
	o := w.OpenShare(Budgeted, DeadHost, 5*sim.Second)
	if o.OK {
		t.Fatal("dead host opened")
	}
	if o.Elapsed > 5*sim.Second+100*sim.Millisecond {
		t.Fatalf("budgeted policy overshot the 5 s deadline: %v", o.Elapsed)
	}
}

func TestBudgetedHealthyUnaffectedByDeadline(t *testing.T) {
	w := NewWorld(1)
	o := w.OpenShare(Budgeted, FileServer, 5*sim.Second)
	if !o.OK || o.Elapsed > sim.Second {
		t.Fatalf("budgeted healthy open: %v", o)
	}
}

func TestAdaptiveDetectsDeathOrdersOfMagnitudeFaster(t *testing.T) {
	wStatic := NewWorld(1)
	static := wStatic.OpenShare(Static, DeadHost, 0)

	wAdaptive := NewWorld(1)
	wAdaptive.Warm(10)
	adaptive := wAdaptive.OpenShare(Adaptive, DeadHost, 0)

	if adaptive.OK || static.OK {
		t.Fatal("dead host opened")
	}
	if adaptive.Elapsed*10 > static.Elapsed {
		t.Fatalf("adaptive (%v) not ≥10× faster than static (%v)", adaptive.Elapsed, static.Elapsed)
	}
	t.Logf("failure detection: static=%v adaptive=%v (%.0f× faster)",
		static.Elapsed, adaptive.Elapsed, float64(static.Elapsed)/float64(adaptive.Elapsed))
}

func TestAdaptiveBadNameFast(t *testing.T) {
	w := NewWorld(1)
	w.Warm(10)
	o := w.OpenShare(Adaptive, BadName, 0)
	if o.OK {
		t.Fatal("bad name resolved")
	}
	if o.Elapsed > sim.Second {
		t.Fatalf("adaptive typo detection took %v", o.Elapsed)
	}
}

func TestWorldDeterminism(t *testing.T) {
	a := NewWorld(9)
	b := NewWorld(9)
	oa := a.OpenShare(Static, DeadHost, 0)
	ob := b.OpenShare(Static, DeadHost, 0)
	if oa != ob {
		t.Fatalf("outcomes diverged: %v vs %v", oa, ob)
	}
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || Budgeted.String() != "budgeted" || Adaptive.String() != "adaptive" {
		t.Fatal("policy names broken")
	}
}
