package layers

import (
	"timerstudy/internal/core"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
)

// OpenShare performs the user action "type a server name into the file
// browser" under the given policy and runs the simulation until success or
// error is reported. userDeadline only applies to the Budgeted policy.
func (w *World) OpenShare(policy Policy, name string, userDeadline sim.Duration) Outcome {
	start := w.Eng.Now()
	var out *Outcome
	done := func(ok bool, detail string) {
		if out != nil {
			return
		}
		out = &Outcome{OK: ok, Elapsed: w.Eng.Now().Sub(start), Detail: detail}
	}

	var parent *core.Entry
	if policy == Budgeted {
		// The single user-level deadline every nested timeout is clipped
		// to (Section 5.2's provenance-aware composition).
		parent = w.Fac.Arm("user-deadline", core.Exact(userDeadline), func() {
			done(false, "user deadline")
		})
	}

	w.resolve(policy, parent, name, func(ok bool, addr string) {
		if out != nil {
			return
		}
		if !ok {
			done(false, "name resolution failed")
			return
		}
		w.connect(policy, parent, addr, func(ok bool, detail string) {
			done(ok, detail)
		})
	})

	// Run until a verdict lands (bounded: nothing in the stack waits more
	// than the TCP give-up of ~2 minutes).
	for out == nil && w.Eng.Pending() > 0 {
		w.Eng.Step()
	}
	if out == nil {
		out = &Outcome{OK: false, Elapsed: w.Eng.Now().Sub(start), Detail: "simulation drained"}
	}
	if parent != nil && parent.Pending() {
		_ = w.Fac.Cancel(parent)
	}
	return *out
}

// Warm trains the adaptive estimators with successful opens so the Adaptive
// policy has a latency history, as a deployed system would.
func (w *World) Warm(n int) {
	for i := 0; i < n; i++ {
		o := w.OpenShare(Adaptive, FileServer, 0)
		if !o.OK {
			panic("layers: warm-up open failed: " + o.String())
		}
		// Space the attempts out.
		w.Eng.Run(w.Eng.Now().Add(sim.Second))
	}
}

// --- name resolution ---

type resolveState struct {
	done      bool
	remaining int
	cb        func(bool, string)
}

func (r *resolveState) succeed(addr string) {
	if r.done {
		return
	}
	r.done = true
	r.cb(true, addr)
}

func (r *resolveState) providerFailed() {
	r.remaining--
	if !r.done && r.remaining == 0 {
		r.done = true
		r.cb(false, "")
	}
}

// resolve runs WINS, DNS and NetBT in parallel, each with its own retry
// schedule, succeeding on the first positive answer and failing when all
// three conclude.
func (w *World) resolve(policy Policy, parent *core.Entry, name string, cb func(ok bool, addr string)) {
	st := &resolveState{remaining: 3, cb: cb}
	w.resolveProvider(policy, parent, st, name, "wins", winsTries, func(i int) sim.Duration { return winsTryTimeout })
	w.resolveProvider(policy, parent, st, name, "dns", dnsTries, func(i int) sim.Duration { return dnsBaseTimeout << uint(i) })
	w.resolveProvider(policy, parent, st, name, "netbt", netbtTries, func(i int) sim.Duration { return netbtTryTimeout })
}

func (w *World) resolveProvider(policy Policy, parent *core.Entry, st *resolveState, name, via string, tries int, timeoutOf func(int) sim.Duration) {
	var try func(i int)
	try = func(i int) {
		if st.done {
			return
		}
		if i >= tries {
			st.providerFailed()
			return
		}
		id := w.id()
		sentAt := w.Eng.Now()
		var guard *core.Guard
		answered := false
		w.lookups[id] = func(resp lookupResp) {
			answered = true
			if guard != nil {
				_ = guard.Done()
			}
			if policy == Adaptive {
				w.adaptResolve.ObserveSuccess(w.Eng.Now().Sub(sentAt))
			}
			if resp.found {
				st.succeed(resp.addr)
			} else {
				// Definitive negative (DNS NXDOMAIN).
				st.providerFailed()
			}
		}
		onTimeout := func() {
			if answered || st.done {
				return
			}
			delete(w.lookups, id)
			try(i + 1)
		}
		switch policy {
		case Static:
			guard = w.Fac.NewGuard(nil, via+"-timeout", core.Exact(timeoutOf(i)), onTimeout)
		case Budgeted:
			guard = w.Fac.NewGuard(parent, via+"-timeout", core.Exact(timeoutOf(i)), onTimeout)
		case Adaptive:
			guard = w.adaptResolve.Arm(onTimeout)
		}
		w.Net.Send(netsim.Packet{From: ClientHost, To: "nameserver", Size: 80,
			Payload: lookupReq{name: name, id: id, via: via}})
	}
	try(0)
}

// --- protocol connection ---

type connectState struct {
	done      bool
	remaining int
	cb        func(bool, string)
}

func (c *connectState) succeed(detail string) {
	if c.done {
		return
	}
	c.done = true
	c.cb(true, detail)
}

func (c *connectState) protocolFailed() {
	c.remaining--
	if !c.done && c.remaining == 0 {
		c.done = true
		c.cb(false, "all protocols failed")
	}
}

// connect races SMB, NFS-over-SunRPC and WebDAV against the resolved
// address, as the Windows file browser does.
func (w *World) connect(policy Policy, parent *core.Entry, addr string, cb func(ok bool, detail string)) {
	st := &connectState{remaining: 3, cb: cb}
	w.trySMB(policy, parent, st, addr)
	w.tryNFS(policy, parent, st, addr)
	w.tryWebDAV(policy, parent, st, addr)
}

// trySMB: TCP connect to 445, then a negotiate round trip. Under the Static
// policy the connect has *no* application guard — it leans on TCP's own
// exponential SYN backoff, which takes ~93 s to give up. That is the layer
// that makes the dead-host case take over a minute.
func (w *World) trySMB(policy Policy, parent *core.Entry, st *connectState, addr string) {
	var guard *core.Guard
	decided := false
	fail := func() {
		if decided || st.done {
			return
		}
		decided = true
		st.protocolFailed()
	}
	switch policy {
	case Static:
		// No app-level connect guard: TCP decides.
	case Budgeted:
		//lint:ignore exactspec the negotiate budget models the fixed legacy SMB deadline under study
		guard = w.Fac.NewGuard(parent, "smb-connect", core.Exact(smbNegotiate), fail)
	case Adaptive:
		guard = w.adaptConnect.Arm(fail)
	}
	started := w.Eng.Now()
	w.Client.Connect(addr, 445, func(c *netsim.Conn, err error) {
		if decided || st.done {
			if c != nil {
				c.Close()
			}
			return
		}
		if err != nil {
			if guard != nil {
				_ = guard.Done()
			}
			fail()
			return
		}
		c.OnMessage = func(c *netsim.Conn, size int, payload any) {
			if guard != nil {
				_ = guard.Done()
			}
			if policy == Adaptive {
				w.adaptConnect.ObserveSuccess(w.Eng.Now().Sub(started))
			}
			decided = true
			c.Close()
			st.succeed("smb")
		}
		c.Send(300, "smb-negotiate", nil)
	})
}

// tryNFS: SunRPC over datagrams with the classic 7-retry, doubling-from-
// 500 ms schedule (63.5 s total under Static).
func (w *World) tryNFS(policy Policy, parent *core.Entry, st *connectState, addr string) {
	// With per-try timeouts at the 99 % confidence quantile, three tries
	// already push the false-positive rate to ~10⁻⁶; the static schedule's
	// seven retries exist to compensate for its arbitrary base value.
	tries := rpcTries
	if policy == Adaptive {
		tries = 3
	}
	var try func(i int)
	try = func(i int) {
		if st.done {
			return
		}
		if i >= tries {
			st.protocolFailed()
			return
		}
		xid := w.id()
		sentAt := w.Eng.Now()
		var guard *core.Guard
		w.rpcs[xid] = func() {
			if guard != nil {
				_ = guard.Done()
			}
			if st.done {
				return
			}
			if policy == Adaptive {
				w.adaptConnect.ObserveSuccess(w.Eng.Now().Sub(sentAt))
			}
			st.succeed("nfs")
		}
		onTimeout := func() {
			delete(w.rpcs, xid)
			try(i + 1)
		}
		switch policy {
		case Static:
			guard = w.Fac.NewGuard(nil, "sunrpc", core.Exact(rpcBaseTimeout<<uint(i)), onTimeout)
		case Budgeted:
			guard = w.Fac.NewGuard(parent, "sunrpc", core.Exact(rpcBaseTimeout<<uint(i)), onTimeout)
		case Adaptive:
			guard = w.adaptConnect.ArmRetry(uint(i), onTimeout)
		}
		w.Net.Send(netsim.Packet{From: ClientHost, To: addr, Size: 150,
			Payload: rpcReq{xid: xid, prog: "mount"}})
	}
	try(0)
}

// tryWebDAV: HTTP OPTIONS guarded by the stack's 30 s default under Static.
func (w *World) tryWebDAV(policy Policy, parent *core.Entry, st *connectState, addr string) {
	decided := false
	fail := func() {
		if decided || st.done {
			return
		}
		decided = true
		st.protocolFailed()
	}
	var guard *core.Guard
	started := w.Eng.Now()
	switch policy {
	case Static:
		//lint:ignore exactspec the 30 s stack default IS the legacy behaviour this model reproduces
		guard = w.Fac.NewGuard(nil, "webdav", core.Exact(webdavTimeout), fail)
	case Budgeted:
		//lint:ignore exactspec same fixed stack default, merely clipped to the user budget
		guard = w.Fac.NewGuard(parent, "webdav", core.Exact(webdavTimeout), fail)
	case Adaptive:
		guard = w.adaptConnect.Arm(fail)
	}
	w.Client.Connect(addr, 80, func(c *netsim.Conn, err error) {
		if decided || st.done {
			if c != nil {
				c.Close()
			}
			return
		}
		if err != nil {
			_ = guard.Done()
			fail()
			return
		}
		c.OnMessage = func(c *netsim.Conn, size int, payload any) {
			_ = guard.Done()
			if policy == Adaptive {
				w.adaptConnect.ObserveSuccess(w.Eng.Now().Sub(started))
			}
			decided = true
			c.Close()
			st.succeed("webdav")
		}
		c.Send(200, "webdav-options", nil)
	})
}
