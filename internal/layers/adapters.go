package layers

import (
	"timerstudy/internal/core"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
)

// coreFacilityAdapter lets the client's TCP-lite stack arm its protocol
// timers on the redesigned core facility — the clean-slate stacking the
// paper's Section 5 sketches.
type coreFacilityAdapter struct {
	f *core.Facility
}

type coreHandle struct {
	f      *core.Facility
	origin string
	fn     func()
	entry  *core.Entry
}

// NewTimer implements netsim.Facility.
func (a *coreFacilityAdapter) NewTimer(origin string, fn func()) netsim.Handle {
	return &coreHandle{f: a.f, origin: origin, fn: fn}
}

// Now implements netsim.Facility.
func (a *coreFacilityAdapter) Now() sim.Time { return a.f.Now() }

func (h *coreHandle) Arm(d sim.Duration) {
	if h.entry.Pending() {
		_ = h.f.Cancel(h.entry)
	}
	h.entry = h.f.Arm(h.origin, core.Exact(d), h.fn)
}

func (h *coreHandle) Stop() bool {
	return h.f.Cancel(h.entry)
}

func (h *coreHandle) Pending() bool { return h.entry.Pending() }

func (h *coreHandle) Release() {
	if h.entry.Pending() {
		_ = h.f.Cancel(h.entry)
	}
}

// nullFacility arms server-side timers directly on the engine: the remote
// machines are not under study.
type nullFacility struct {
	eng *sim.Engine
}

type nullHandle struct {
	eng *sim.Engine
	fn  func()
	ev  sim.Event
}

// NewTimer implements netsim.Facility.
func (f *nullFacility) NewTimer(origin string, fn func()) netsim.Handle {
	return &nullHandle{eng: f.eng, fn: fn}
}

// Now implements netsim.Facility.
func (f *nullFacility) Now() sim.Time { return f.eng.Now() }

func (h *nullHandle) Arm(d sim.Duration) {
	if h.ev.Pending() {
		_ = h.eng.Cancel(h.ev)
	}
	h.ev = h.eng.After(d, "null-timer", h.fn)
}

func (h *nullHandle) Stop() bool {
	return h.eng.Cancel(h.ev)
}

func (h *nullHandle) Pending() bool { return h.ev.Pending() }

func (h *nullHandle) Release() { _ = h.Stop() }
