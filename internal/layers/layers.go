// Package layers reproduces the Section 2.2.2 case study: opening a network
// file share on a desktop OS drives a stack of independent layers — name
// resolution (WINS, DNS, NetBT tried in parallel), then file protocols (SMB,
// NFS-over-SunRPC, WebDAV tried in parallel), each with its own nested,
// statically configured timeouts and retries. The SunRPC layer retries 7
// times doubling an initial 500 ms timeout; TCP connect backs off
// exponentially from 3 s.
//
// The consequence the paper demonstrates: although a healthy server answers
// within a ~130 ms round trip, a typo or a dead host takes *over a minute*
// to surface as an error, because the increasingly conservative layered
// timeouts hide the failure from the user.
//
// Three policies make the point measurable:
//
//   - Static: the observed status-quo layering with its hardcoded values;
//   - Budgeted: Section 5.2's provenance-aware composition — one user-level
//     deadline propagates down, clipping every nested timeout;
//   - Adaptive: Section 5.1's learned timeouts — each layer times out at a
//     confidence quantile of its own observed latency history.
package layers

import (
	"fmt"
	"math/rand"

	"timerstudy/internal/core"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
)

// Policy selects the timeout regime for an open attempt.
type Policy int

const (
	// Static is the paper's observed layering: hardcoded per-layer values.
	Static Policy = iota
	// Budgeted propagates a single user deadline through every layer.
	Budgeted
	// Adaptive uses learned per-layer timeout distributions.
	Adaptive
)

var policyNames = [...]string{"static", "budgeted", "adaptive"}

// String returns the policy name.
func (p Policy) String() string { return policyNames[p] }

// Static layer constants, as Section 2.2.2 describes them.
const (
	winsTryTimeout  = 1500 * sim.Millisecond
	winsTries       = 3
	dnsBaseTimeout  = 1 * sim.Second // 1, 2, 4 s
	dnsTries        = 3
	netbtTryTimeout = 1500 * sim.Millisecond
	netbtTries      = 3

	rpcBaseTimeout = 500 * sim.Millisecond // doubled each retry
	rpcTries       = 7
	webdavTimeout  = 30 * sim.Second
	smbNegotiate   = 5 * sim.Second
)

// message payloads on the simulated network
type lookupReq struct {
	name string
	id   uint64
	via  string // "wins" | "dns" | "netbt"
}
type lookupResp struct {
	id    uint64
	found bool
	addr  string
}
type rpcReq struct {
	xid  uint64
	prog string
}
type rpcResp struct{ xid uint64 }

// World is the simulated environment: a client, name servers, a healthy
// file server, and a registered-but-dead host.
type World struct {
	Eng    *sim.Engine
	Net    *netsim.Network
	Fac    *core.Facility
	Client *netsim.Stack
	rng    *rand.Rand

	nextID uint64
	// pending continuations by lookup/rpc id
	lookups map[uint64]func(lookupResp)
	rpcs    map[uint64]func()

	// adaptive state shared across attempts (warm history)
	adaptResolve *core.AdaptiveTimeout
	adaptConnect *core.AdaptiveTimeout
}

// Host names in the world.
const (
	ClientHost = "client"
	FileServer = "fileserver" // healthy: WINS/DNS know it, services answer
	DeadHost   = "deadhost"   // DNS knows it; the machine is unplugged
	BadName    = "no-such-server"
)

// NewWorld builds the environment. The WAN-ish path to the file server has
// the paper's ~130 ms round trip.
func NewWorld(seed int64) *World {
	eng := sim.NewEngine(seed)
	w := &World{
		Eng:     eng,
		Net:     netsim.NewNetwork(eng),
		Fac:     core.New(core.SimBackend{Eng: eng}),
		rng:     eng.Rand(),
		lookups: map[uint64]func(lookupResp){},
		rpcs:    map[uint64]func(){},
	}
	w.Client = netsim.NewStack(w.Net, ClientHost, &coreFacilityAdapter{w.Fac})
	w.Client.OnRaw = w.clientRaw

	// Name servers: a local DNS/WINS box, fast.
	w.nameServer("nameserver", map[string]string{
		FileServer: FileServer,
		DeadHost:   DeadHost,
	})
	w.Net.SetPath(ClientHost, "nameserver", netsim.PathConfig{Latency: sim.Millisecond, Jitter: sim.Millisecond})

	// The healthy file server: SMB on 445, WebDAV on 80, SunRPC by raw
	// packets; 65 ms one-way = 130 ms RTT.
	srv := netsim.NewStack(w.Net, FileServer, &nullFacility{eng: eng})
	srv.Listen(445, func(c *netsim.Conn) {
		c.OnMessage = func(c *netsim.Conn, size int, payload any) {
			c.Send(200, "smb-negotiate-resp", nil)
		}
	})
	srv.Listen(80, func(c *netsim.Conn) {
		c.OnMessage = func(c *netsim.Conn, size int, payload any) {
			c.Send(500, "webdav-options-resp", nil)
		}
	})
	srv.OnRaw = func(p netsim.Packet) {
		if req, ok := p.Payload.(rpcReq); ok {
			w.Net.Send(netsim.Packet{From: FileServer, To: p.From, Size: 100, Payload: rpcResp{xid: req.xid}})
		}
	}
	w.Net.SetPath(ClientHost, FileServer, netsim.PathConfig{
		Latency: 65 * sim.Millisecond, Jitter: 5 * sim.Millisecond,
	})
	// DeadHost answers ARP (the gateway proxies for routed destinations)
	// but drops everything else: TCP sees pure SYN loss.
	w.Net.AttachBlackhole(DeadHost)
	w.Net.SetPath(ClientHost, DeadHost, netsim.PathConfig{
		Latency: 65 * sim.Millisecond, Jitter: 5 * sim.Millisecond,
	})

	// Adaptive timeout sources survive across attempts.
	w.adaptResolve = w.Fac.NewAdaptiveTimeout("resolve", 0.99, 10*sim.Millisecond, 10*sim.Second)
	w.adaptConnect = w.Fac.NewAdaptiveTimeout("connect", 0.99, 10*sim.Millisecond, 30*sim.Second)
	return w
}

// nameServer attaches a host answering WINS/DNS/NetBT lookups from a table.
func (w *World) nameServer(host string, table map[string]string) {
	recv := func(p netsim.Packet) {
		req, ok := p.Payload.(lookupReq)
		if !ok {
			return
		}
		addr, found := table[req.name]
		// Nonexistent names: WINS/NetBT simply never answer (broadcast
		// protocols); DNS answers NXDOMAIN after a short lookup.
		if !found && req.via != "dns" {
			return
		}
		delay := sim.Duration(1+w.rng.Int63n(3)) * sim.Millisecond
		w.Eng.After(delay, host+":answer", func() {
			w.Net.Send(netsim.Packet{From: host, To: p.From, Size: 100,
				Payload: lookupResp{id: req.id, found: found, addr: addr}})
		})
	}
	w.Net.Attach(host, recv)
}

// clientRaw dispatches name-service and RPC responses to continuations.
func (w *World) clientRaw(p netsim.Packet) {
	switch m := p.Payload.(type) {
	case lookupResp:
		if cb, ok := w.lookups[m.id]; ok {
			delete(w.lookups, m.id)
			cb(m)
		}
	case rpcResp:
		if cb, ok := w.rpcs[m.xid]; ok {
			delete(w.rpcs, m.xid)
			cb()
		}
	}
}

func (w *World) id() uint64 {
	w.nextID++
	return w.nextID
}

// Outcome is the result of one open attempt.
type Outcome struct {
	// OK reports success.
	OK bool
	// Elapsed is the time from the user action to success or to the error
	// being reported — the paper's "time to present this failure to the
	// user".
	Elapsed sim.Duration
	// Detail says which layer decided.
	Detail string
}

// String renders the outcome.
func (o Outcome) String() string {
	status := "error"
	if o.OK {
		status = "ok"
	}
	return fmt.Sprintf("%s after %v (%s)", status, o.Elapsed, o.Detail)
}
