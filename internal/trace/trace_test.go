package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"timerstudy/internal/sim"
)

func TestOriginInterning(t *testing.T) {
	b := NewBuffer(10)
	a := b.Origin("kernel/tcp:retransmit")
	if a2 := b.Origin("kernel/tcp:retransmit"); a2 != a {
		t.Fatalf("re-intern gave %d, want %d", a2, a)
	}
	c := b.Origin("firefox/select")
	if c == a {
		t.Fatal("distinct origins share an ID")
	}
	if got := b.OriginName(a); got != "kernel/tcp:retransmit" {
		t.Fatalf("OriginName = %q", got)
	}
	if got := b.OriginName(9999); got != "?" {
		t.Fatalf("unknown origin = %q, want ?", got)
	}
}

func TestBufferDropsWhenFull(t *testing.T) {
	b := NewBuffer(2)
	for i := 0; i < 5; i++ {
		b.Log(Record{T: sim.Time(i), Op: OpSet})
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	// relayfs semantics: the *first* two records are kept.
	if b.Records()[0].T != 0 || b.Records()[1].T != 1 {
		t.Fatalf("wrong records kept: %+v", b.Records())
	}
	c := b.Counters()
	if c.Total != 5 || c.Dropped != 3 || c.ByOp[OpSet] != 5 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestZeroCapacityCountsOnly(t *testing.T) {
	b := NewBuffer(0)
	b.Log(Record{Op: OpExpire})
	if b.Len() != 0 {
		t.Fatal("stored a record at cap 0")
	}
	if b.Counters().ByOp[OpExpire] != 1 {
		t.Fatal("did not count")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpInit: "init", OpSet: "set", OpCancel: "cancel", OpExpire: "expire", OpWait: "wait", Op(99): "op(99)"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestFlags(t *testing.T) {
	r := Record{Flags: FlagUser | FlagDeferrable}
	if !r.IsUser() {
		t.Fatal("IsUser = false")
	}
	if (Record{Flags: FlagDeferrable}).IsUser() {
		t.Fatal("IsUser = true for kernel record")
	}
}

func TestReset(t *testing.T) {
	b := NewBuffer(10)
	id := b.Origin("x")
	b.Log(Record{Op: OpSet, Origin: id})
	b.Reset()
	if b.Len() != 0 || b.Counters().Total != 0 {
		t.Fatal("reset did not clear records/counters")
	}
	if b.Origin("x") != id {
		t.Fatal("reset lost interned origins")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuffer(100)
	o1 := b.Origin("kernel/arp")
	o2 := b.Origin("apache/event-loop")
	recs := []Record{
		{T: 1, TimerID: 0xdeadbeef, Timeout: int64(5 * sim.Second), PID: 0, Origin: o1, Op: OpSet, Flags: FlagDeferrable},
		{T: 2, TimerID: 0xdeadbeef, Op: OpCancel},
		{T: 3, TimerID: 42, Timeout: int64(sim.Second), PID: 1234, Origin: o2, Op: OpWait, Flags: FlagUser},
		{T: int64e9(4), TimerID: 42, Op: OpExpire, Flags: FlagUser},
		{T: 5, TimerID: 7, Timeout: -12, PID: -1, Origin: o2, Op: OpInit},
	}
	for _, r := range recs {
		b.Log(r)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(recs) {
		t.Fatalf("decoded %d records, want %d", got.Len(), len(recs))
	}
	for i, r := range got.Records() {
		if r != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, r, recs[i])
		}
	}
	if got.OriginName(o1) != "kernel/arp" || got.OriginName(o2) != "apache/event-loop" {
		t.Fatal("origins did not survive round trip")
	}
}

func int64e9(s int64) sim.Time { return sim.Time(s * int64(sim.Second)) }

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace file at all....."))); err == nil {
		t.Fatal("decoded garbage")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("decoded empty input")
	}
}

// Property: any record survives a binary round trip bit-exactly.
func TestRecordCodecProperty(t *testing.T) {
	f := func(tm int64, id uint64, to int64, pid int32, origin uint32, op uint8, flags uint16) bool {
		r := Record{
			T: sim.Time(tm), TimerID: id, Timeout: to, PID: pid,
			Origin: origin, Op: Op(op), Flags: Flags(flags),
		}
		var buf [RecordSize]byte
		putRecord(buf[:], r)
		return getRecord(buf[:]) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
