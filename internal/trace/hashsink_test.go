package trace

import (
	"testing"

	"timerstudy/internal/sim"
)

func feedSink(s Sink, shift uint64) {
	tcp := s.Origin("kernel/tcp:retransmit")
	sel := s.Origin("firefox/select")
	for i := uint64(0); i < 100; i++ {
		s.Log(Record{T: sim.Time(1000 + shift + i), TimerID: i, Timeout: 3e9, Origin: tcp, Op: OpSet})
		if i%3 == 0 {
			s.Log(Record{T: sim.Time(2000 + shift + i), TimerID: i, PID: 7, Origin: sel, Op: OpCancel, Flags: FlagSatisfied})
		} else {
			s.Log(Record{T: sim.Time(2000 + shift + i), TimerID: i, Origin: tcp, Op: OpExpire})
		}
	}
	s.Log(Record{T: 9999, Op: Op(250)}) // out-of-enum op still counted
}

// TestHashSinkDeterminism pins the property the fleet gate relies on: equal
// operation streams give equal digests, and any divergence — in record
// content or in origin intern order — changes the digest.
func TestHashSinkDeterminism(t *testing.T) {
	a, b := NewHashSink(), NewHashSink()
	feedSink(a, 0)
	feedSink(b, 0)
	if a.Sum64() != b.Sum64() {
		t.Fatalf("identical streams digest %x vs %x", a.Sum64(), b.Sum64())
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("identical streams counters %+v vs %+v", a.Counters(), b.Counters())
	}

	c := NewHashSink()
	feedSink(c, 1) // shifted timestamps
	if c.Sum64() == a.Sum64() {
		t.Fatal("shifted stream produced the same digest")
	}

	// Same records, different intern order.
	d, e := NewHashSink(), NewHashSink()
	x1, y1 := d.Origin("x"), d.Origin("y")
	y2, x2 := e.Origin("y"), e.Origin("x")
	if x1 == x2 || y1 == y2 {
		t.Fatal("intern order did not change IDs")
	}
	if d.Sum64() == e.Sum64() {
		t.Fatal("different intern order produced the same digest")
	}
}

// TestHashSinkMatchesBuffer checks HashSink mirrors Buffer's observable
// contract: origin IDs, resolution, and counters.
func TestHashSinkMatchesBuffer(t *testing.T) {
	h, b := NewHashSink(), NewBuffer(DefaultCapacity)
	names := []string{"a", "b", "a", "c", "b"}
	for _, n := range names {
		if hi, bi := h.Origin(n), b.Origin(n); hi != bi {
			t.Fatalf("Origin(%q): hash sink %d, buffer %d", n, hi, bi)
		}
	}
	if h.OriginName(2) != b.OriginName(2) || h.OriginName(999) != "?" {
		t.Fatalf("OriginName mismatch: %q vs %q", h.OriginName(2), b.OriginName(2))
	}
	feedSink(h, 0)
	feedSink(b, 0)
	hc, bc := h.Counters(), b.Counters()
	if hc != bc {
		t.Fatalf("counters diverge: hash %+v buffer %+v", hc, bc)
	}
	var sum uint64
	for _, n := range hc.ByOp {
		sum += n
	}
	if sum+hc.Unknown != hc.Total {
		t.Fatalf("invariant broken: sum(ByOp)=%d unknown=%d total=%d", sum, hc.Unknown, hc.Total)
	}
	if hc.Dropped != 0 {
		t.Fatalf("hash sink reported drops: %+v", hc)
	}
}
