package trace

// Tee returns a Sink fanning every Log and Origin call out to all sinks.
// Because every Sink implementation assigns origin IDs in first-intern
// order, fresh sinks agree on every ID and the teed streams stay
// byte-identical; teeing onto a sink that has already interned a different
// origin set is a programming error and panics at the first divergence.
func Tee(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return &teeSink{sinks: sinks}
}

type teeSink struct{ sinks []Sink }

// Fan expands a sink into its fan-out targets: the inner sinks for a Tee,
// the sink itself otherwise. Callers that type-assert sinks (fleet digest
// and counter folds) use it to see through a tee.
func Fan(s Sink) []Sink {
	if t, ok := s.(*teeSink); ok {
		return t.sinks
	}
	return []Sink{s}
}

func (t *teeSink) Log(r Record) {
	for _, s := range t.sinks {
		s.Log(r)
	}
}

// Counters reports the first counter-keeping inner sink's tallies — every
// sink in a tee sees the identical record sequence, so one speaks for all.
func (t *teeSink) Counters() Counters {
	for _, s := range t.sinks {
		if c, ok := s.(interface{ Counters() Counters }); ok {
			return c.Counters()
		}
	}
	return Counters{}
}

func (t *teeSink) Origin(name string) uint32 {
	id := t.sinks[0].Origin(name)
	for _, s := range t.sinks[1:] {
		if got := s.Origin(name); got != id {
			panic("trace: Tee sinks disagree on origin ID; tee only onto fresh sinks")
		}
	}
	return id
}
