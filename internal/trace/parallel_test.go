package trace

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"timerstudy/internal/sim"
)

// workerSweep is the canonical worker-count matrix: serial, minimal
// parallelism, the host's parallelism, and heavy oversubscription.
func workerSweep() []int {
	ncpu := runtime.NumCPU()
	return []int{1, 2, ncpu, ncpu * 4}
}

// replaySerial is the reference: a plain ForEach over a fresh reader,
// capturing records plus resolved origin names.
func replaySerial(t *testing.T, data []byte) ([]Record, []string) {
	t.Helper()
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := sr.ForEach(func(r Record) { recs = append(recs, r) }); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(recs))
	for i, r := range recs {
		names[i] = sr.OriginName(r.Origin)
	}
	return recs, names
}

// TestParallelForEachMatchesSerial sweeps worker counts and asserts the
// parallel walk delivers exactly the serial record sequence, in order.
func TestParallelForEachMatchesSerial(t *testing.T) {
	const nrec = 10_000
	data := buildV2(t, nrec, 512) // ~20 chunks, incremental 'O' frame mid-stream
	wantRecs, wantNames := replaySerial(t, data)

	for _, workers := range workerSweep() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sr, err := NewStreamReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			var got []Record
			if err := ParallelForEach(sr, workers, func(r Record) { got = append(got, r) }); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(wantRecs) {
				t.Fatalf("replayed %d records, want %d", len(got), len(wantRecs))
			}
			for i := range got {
				if got[i] != wantRecs[i] {
					t.Fatalf("record %d: %+v != %+v", i, got[i], wantRecs[i])
				}
				if gn := sr.OriginName(got[i].Origin); gn != wantNames[i] {
					t.Fatalf("record %d origin: %q != %q", i, gn, wantNames[i])
				}
			}
			c, ok := sr.Counters()
			if !ok {
				t.Fatal("no footer counters after parallel replay")
			}
			if c.Total != nrec {
				t.Fatalf("footer Total = %d, want %d", c.Total, nrec)
			}
		})
	}
}

// TestForEachChunkOriginStraddle is the chunk-boundary torture test: with a
// chunk size of 1, every record gets its own 'R' frame and origins interned
// mid-stream land in 'O' frames between record chunks. Every chunk's origin
// snapshot must resolve that chunk's records, at every worker count.
func TestForEachChunkOriginStraddle(t *testing.T) {
	const nrec = 300
	var buf bytes.Buffer
	sw := NewStreamWriterSize(&buf, 1)
	// A fresh origin before (almost) every record: maximal straddling.
	for i := 0; i < nrec; i++ {
		o := uint32(0)
		if i%2 == 0 {
			o = sw.Origin(fmt.Sprintf("origin/%d", i))
		}
		sw.Log(Record{T: sim.Time(i), TimerID: uint64(i), Op: OpSet, Origin: o})
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for _, workers := range workerSweep() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sr, err := NewStreamReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			i := 0
			err = sr.ForEachChunk(workers, func(c Chunk) error {
				for _, r := range c.Records {
					want := "?"
					if i%2 == 0 {
						want = fmt.Sprintf("origin/%d", i)
					}
					if got := c.OriginName(r.Origin); got != want {
						return fmt.Errorf("record %d resolved to %q via chunk snapshot, want %q", i, got, want)
					}
					i++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != nrec {
				t.Fatalf("delivered %d records, want %d", i, nrec)
			}
		})
	}
}

// TestBufferForEachChunk checks the in-memory implementation: full coverage
// in order, shared origin table, and chunking at DefaultChunkRecords.
func TestBufferForEachChunk(t *testing.T) {
	nrec := DefaultChunkRecords + 100 // forces two chunks
	b := NewBuffer(nrec)
	logSequence(b, nrec)

	i, chunks := 0, 0
	err := b.ForEachChunk(8, func(c Chunk) error {
		chunks++
		for _, r := range c.Records {
			if want := b.Records()[i]; r != want {
				return fmt.Errorf("record %d: %+v != %+v", i, r, want)
			}
			if gn, wn := c.OriginName(r.Origin), b.OriginName(r.Origin); gn != wn {
				return fmt.Errorf("record %d origin: %q != %q", i, gn, wn)
			}
			i++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != nrec || chunks != 2 {
		t.Fatalf("delivered %d records in %d chunks, want %d in 2", i, chunks, nrec)
	}
}

// TestForEachChunkCallbackErrorStops asserts a consumer error aborts the
// pipeline promptly (reader and workers wound down, no goroutine leak under
// -race) and surfaces verbatim.
func TestForEachChunkCallbackErrorStops(t *testing.T) {
	data := buildV2(t, 10_000, 64)
	sentinel := errors.New("stop here")
	for _, workers := range workerSweep() {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		chunks := 0
		err = sr.ForEachChunk(workers, func(Chunk) error {
			chunks++
			if chunks == 3 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if chunks != 3 {
			t.Fatalf("workers=%d: fn ran %d times after error, want 3", workers, chunks)
		}
	}
}

// TestForEachChunkTruncatedStream asserts decode errors surface at every
// worker count, after the chunks that preceded them.
func TestForEachChunkTruncatedStream(t *testing.T) {
	full := buildV2(t, 2000, 64)
	trunc := full[:len(full)*2/3]
	for _, workers := range workerSweep() {
		sr, err := NewStreamReader(bytes.NewReader(trunc))
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.ForEachChunk(workers, func(Chunk) error { return nil }); err == nil {
			t.Fatalf("workers=%d: truncated stream replayed without error", workers)
		}
	}
}

// TestForEachChunkOriginOutOfRange: the per-record origin validation moved
// into chunk decode; it must still fire on every path.
func TestForEachChunkOriginOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.Log(Record{T: 1, Op: OpSet, Origin: 99})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerSweep() {
		sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		err = sr.ForEachChunk(workers, func(Chunk) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "origin 99 out of range") {
			t.Fatalf("workers=%d: err = %v, want origin-out-of-range error", workers, err)
		}
	}
}

func TestForEachChunkSingleUse(t *testing.T) {
	sr, err := NewStreamReader(bytes.NewReader(buildV2(t, 5, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ForEachChunk(4, func(Chunk) error { return nil }); err != nil {
		t.Fatal(err)
	}
	err = sr.ForEachChunk(4, func(Chunk) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "already consumed") {
		t.Fatalf("second ForEachChunk: err = %v, want already-consumed error", err)
	}
}

// TestParallelForEachFallback: a Source without chunked access must still
// work through the serial path.
type plainSource struct{ recs []Record }

func (p *plainSource) ForEach(fn func(Record)) error {
	for _, r := range p.recs {
		fn(r)
	}
	return nil
}
func (p *plainSource) OriginName(uint32) string { return "?" }

func TestParallelForEachFallback(t *testing.T) {
	src := &plainSource{recs: []Record{{T: 1}, {T: 2}, {T: 3}}}
	n := 0
	if err := ParallelForEach(src, 8, func(r Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fallback delivered %d records, want 3", n)
	}
}
