package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"timerstudy/internal/sim"
)

// logSequence drives a Sink through a representative record stream: several
// origins (some interned mid-stream), all op kinds, and enough records to
// cross small chunk boundaries.
func logSequence(s Sink, nrec int) {
	k := s.Origin("kernel/writeback")
	x := s.Origin("Xorg/select")
	for i := 0; i < nrec; i++ {
		o := k
		if i%3 == 0 {
			o = x
		}
		if i == nrec/2 {
			o = s.Origin("late/origin") // interned after chunks already flushed
		}
		s.Log(Record{
			T: sim.Time(i), TimerID: uint64(i % 7), Op: Op(i % int(nOps)),
			Origin: o, Timeout: int64(i) * int64(sim.Millisecond),
			PID: int32(i % 3), Flags: Flags(i % 4),
		})
	}
}

// buildV2 returns an encoded v2 stream; chunkRecords < nrec forces multiple
// chunks and an incremental 'O' frame mid-stream.
func buildV2(tb testing.TB, nrec, chunkRecords int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriterSize(&buf, chunkRecords)
	logSequence(sw, nrec)
	if err := sw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamMatchesBuffer is the core seam equivalence: the same Origin/Log
// call sequence through a Buffer and a StreamWriter must replay to identical
// records, origin names and counters.
func TestStreamMatchesBuffer(t *testing.T) {
	const nrec = 100
	b := NewBuffer(nrec)
	logSequence(b, nrec)

	sr, err := NewStreamReader(bytes.NewReader(buildV2(t, nrec, 16)))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := sr.ForEach(func(r Record) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	want := b.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, buffer holds %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
		if gn, wn := sr.OriginName(got[i].Origin), b.OriginName(want[i].Origin); gn != wn {
			t.Fatalf("record %d origin: %q != %q", i, gn, wn)
		}
	}
	c, ok := sr.Counters()
	if !ok {
		t.Fatal("footer counters not available after ForEach")
	}
	if c != b.Counters() {
		t.Fatalf("counters %+v != %+v", c, b.Counters())
	}
}

// TestStreamWriterOriginIDsMatchBuffer pins the interning quirk both sinks
// share: explicitly interning "?" yields a fresh ID (1), not the implicit 0,
// so record streams stay byte-identical across sink kinds.
func TestStreamWriterOriginIDsMatchBuffer(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	b := NewBuffer(8)
	for _, name := range []string{"?", "a", "b", "a", "?"} {
		if got, want := sw.Origin(name), b.Origin(name); got != want {
			t.Fatalf("Origin(%q): stream %d, buffer %d", name, got, want)
		}
	}
}

func TestOpenAutoDetectsBothVersions(t *testing.T) {
	// v1: a fully decoded Buffer.
	v1 := buildEncoded(t, 5)
	src, err := Open(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Buffer); !ok {
		t.Fatalf("v1 Open returned %T, want *Buffer", src)
	}
	n := 0
	if err := src.ForEach(func(Record) { n++ }); err != nil || n != 5 {
		t.Fatalf("v1 replay: %d records, err %v", n, err)
	}

	// v2: a streaming reader.
	src, err = Open(bytes.NewReader(buildV2(t, 50, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*StreamReader); !ok {
		t.Fatalf("v2 Open returned %T, want *StreamReader", src)
	}
	n = 0
	if err := src.ForEach(func(Record) { n++ }); err != nil || n != 50 {
		t.Fatalf("v2 replay: %d records, err %v", n, err)
	}

	if _, err := Open(bytes.NewReader([]byte("XXXX\x02\x00\x00\x00"))); err == nil {
		t.Fatal("Open accepted a bad magic")
	}
}

func TestStreamReaderTruncatedAtEveryBoundary(t *testing.T) {
	full := buildV2(t, 40, 8)
	for cut := 0; cut < len(full); cut++ {
		sr, err := NewStreamReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header itself truncated: fine, already an error
		}
		if err := sr.ForEach(func(Record) {}); err == nil {
			t.Fatalf("replayed a %d-byte prefix of %d bytes without error", cut, len(full))
		}
	}
}

func TestStreamReaderMissingFooter(t *testing.T) {
	// Flush writes complete frames but no 'C' footer: the stream must be
	// rejected as truncated even though every frame parses.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	logSequence(sw, 10)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	err = sr.ForEach(func(Record) {})
	if err == nil || !strings.Contains(err.Error(), "missing counters footer") {
		t.Fatalf("err = %v, want missing-footer error", err)
	}
	if _, ok := sr.Counters(); ok {
		t.Fatal("counters reported ok without a footer")
	}
}

func TestStreamReaderTrailingGarbage(t *testing.T) {
	full := append(buildV2(t, 10, 8), 0x00)
	sr, err := NewStreamReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	err = sr.ForEach(func(Record) {})
	if err == nil || !strings.Contains(err.Error(), "trailing garbage") {
		t.Fatalf("err = %v, want trailing-garbage error", err)
	}
}

func TestStreamReaderOriginOutOfRange(t *testing.T) {
	// StreamWriter does not validate Origin, so a sink misuse (an ID never
	// interned) is representable on disk; the reader must reject it.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.Log(Record{T: 1, Op: OpSet, Origin: 99})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	err = sr.ForEach(func(Record) {})
	if err == nil || !strings.Contains(err.Error(), "origin 99 out of range") {
		t.Fatalf("err = %v, want origin-out-of-range error", err)
	}
}

func TestStreamReaderUnknownFrame(t *testing.T) {
	full := buildV2(t, 10, 8)
	// The final frame byte before the footer payload is 'C'; turn it into an
	// unknown kind.
	idx := len(full) - 1 - countersSize
	if full[idx] != frameCounters {
		t.Fatalf("test layout drifted: byte %d = %q, want 'C'", idx, full[idx])
	}
	full[idx] = 'X'
	sr, err := NewStreamReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	err = sr.ForEach(func(Record) {})
	if err == nil || !strings.Contains(err.Error(), "unknown frame") {
		t.Fatalf("err = %v, want unknown-frame error", err)
	}
}

func TestStreamReaderImplausibleOriginLength(t *testing.T) {
	var buf bytes.Buffer
	hdr := [8]byte{'T', 'S', 'T', 'R', 2, 0, 0, 0}
	buf.Write(hdr[:])
	buf.WriteByte(frameOrigins)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], 1) // one origin...
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], 1<<20) // ...a megabyte long
	buf.Write(u32[:])
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	err = sr.ForEach(func(Record) {})
	if err == nil || !strings.Contains(err.Error(), "implausibly long") {
		t.Fatalf("err = %v, want implausible-length error", err)
	}
}

func TestStreamReaderImplausibleCounts(t *testing.T) {
	for _, kind := range []byte{frameOrigins, frameRecords} {
		var buf bytes.Buffer
		hdr := [8]byte{'T', 'S', 'T', 'R', 2, 0, 0, 0}
		buf.Write(hdr[:])
		buf.WriteByte(kind)
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], 0xffffffff)
		buf.Write(u32[:])
		sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		err = sr.ForEach(func(Record) {})
		if err == nil || !strings.Contains(err.Error(), "implausible") {
			t.Fatalf("frame %q: err = %v, want implausible-count error", kind, err)
		}
	}
}

func TestStreamReaderSingleUse(t *testing.T) {
	sr, err := NewStreamReader(bytes.NewReader(buildV2(t, 5, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ForEach(func(Record) {}); err != nil {
		t.Fatal(err)
	}
	err = sr.ForEach(func(Record) {})
	if err == nil || !strings.Contains(err.Error(), "already consumed") {
		t.Fatalf("second ForEach: err = %v, want already-consumed error", err)
	}
}

func TestNewStreamReaderRejectsV1(t *testing.T) {
	_, err := NewStreamReader(bytes.NewReader(buildEncoded(t, 1)))
	if err == nil || !strings.Contains(err.Error(), "not a v2 stream") {
		t.Fatalf("err = %v, want not-a-v2-stream error", err)
	}
}

func TestStreamWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	logSequence(sw, 3)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatalf("second Close wrote %d more bytes", buf.Len()-n)
	}
}

// TestStreamWriterTrailingOriginsFlushed pins the origin-flush fix: labels
// interned after the last logged record (or with no records at all) must
// still reach the stream on Flush/Close instead of being dropped with the
// empty record chunk.
func TestStreamWriterTrailingOriginsFlushed(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriterSize(&buf, 4)
	sw.Log(Record{T: 1, Op: OpSet, Origin: sw.Origin("early")})
	lateID := sw.Origin("late/after-last-record")
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ForEach(func(Record) {}); err != nil {
		t.Fatal(err)
	}
	if got := sr.OriginName(lateID); got != "late/after-last-record" {
		t.Fatalf("trailing origin replayed as %q, want %q", got, "late/after-last-record")
	}

	// Same with no records at all: an origins-only stream must round-trip.
	buf.Reset()
	sw = NewStreamWriter(&buf)
	only := sw.Origin("only")
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err = NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ForEach(func(Record) {}); err != nil {
		t.Fatal(err)
	}
	if got := sr.OriginName(only); got != "only" {
		t.Fatalf("origins-only stream replayed origin as %q, want %q", got, "only")
	}
}

// TestUnknownOpCounters pins the counter invariant sum(ByOp) + Unknown ==
// Total for every sink kind, including out-of-range ops (which are stored,
// not rejected — the analysis layer skips what it does not understand), and
// its survival through the v2 footer.
func TestUnknownOpCounters(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
	}{
		{"all valid", []Op{OpInit, OpSet, OpCancel, OpExpire, OpWait}},
		{"all unknown", []Op{Op(200), Op(255), nOps}},
		{"mixed", []Op{OpSet, Op(200), OpExpire, Op(77), OpSet}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			sw := NewStreamWriterSize(&buf, 2)
			b := NewBuffer(len(tc.ops))
			for i, op := range tc.ops {
				r := Record{T: sim.Time(i), Op: op}
				sw.Log(r)
				b.Log(r)
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}

			check := func(kind string, c Counters) {
				t.Helper()
				var sum uint64
				for _, n := range c.ByOp {
					sum += n
				}
				if sum+c.Unknown != c.Total {
					t.Fatalf("%s: sum(ByOp)=%d + Unknown=%d != Total=%d", kind, sum, c.Unknown, c.Total)
				}
				if c.Total != uint64(len(tc.ops)) {
					t.Fatalf("%s: Total=%d, want %d", kind, c.Total, len(tc.ops))
				}
			}
			check("buffer", b.Counters())
			check("stream writer", sw.Counters())
			if b.Counters() != sw.Counters() {
				t.Fatalf("buffer counters %+v != stream counters %+v", b.Counters(), sw.Counters())
			}

			// The footer must carry Unknown through a decode round trip, and
			// the stored records must replay intact.
			sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			if err := sr.ForEach(func(r Record) {
				if r.Op != tc.ops[n] {
					t.Fatalf("record %d op = %d, want %d", n, r.Op, tc.ops[n])
				}
				n++
			}); err != nil {
				t.Fatal(err)
			}
			got, ok := sr.Counters()
			if !ok {
				t.Fatal("no footer counters after replay")
			}
			if got != sw.Counters() {
				t.Fatalf("footer counters %+v != writer counters %+v", got, sw.Counters())
			}
			check("footer", got)
		})
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errShort
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errShort
	}
	w.n -= len(p)
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short device" }

func TestStreamWriterStickyError(t *testing.T) {
	sw := NewStreamWriterSize(&failWriter{n: 16}, 2)
	logSequence(sw, 100)
	if err := sw.Close(); err == nil {
		t.Fatal("Close succeeded on a failing writer")
	}
	if sw.Err() == nil {
		t.Fatal("Err not sticky after underlying failure")
	}
}
