package trace

// Sink is the producer side of the trace seam: everything a timer facility
// needs in order to emit records. A Sink either stores records (Buffer),
// spills them to disk while the simulation runs (StreamWriter), or discards
// them (a zero-capacity Buffer). Facilities hold a Sink, never a concrete
// buffer — the rawsink lint analyzer enforces this outside this package.
type Sink interface {
	// Log records one operation. Implementations count every record even
	// when they cannot store it.
	Log(Record)
	// Origin interns an origin label and returns its stable ID. IDs are
	// assigned in first-intern order, identically across implementations,
	// so the same simulation produces the same record bytes through any
	// Sink.
	Origin(name string) uint32
}

// Source is the consumer side: a recorded stream that can be walked once
// (or more, for in-memory implementations) in record order, resolving
// origin IDs as it goes. The analysis pipeline consumes a Source in a
// single pass, so a file-backed Source never needs to fit in memory.
type Source interface {
	// ForEach calls fn for every record in time order. File-backed sources
	// return decoding/IO errors; in-memory sources return nil. A Source
	// may be single-use (StreamReader): callers that need a second pass
	// reopen the underlying file.
	ForEach(fn func(Record)) error
	// OriginName resolves an origin ID; unknown IDs resolve to "?". During
	// ForEach the mapping is complete for every record delivered so far.
	OriginName(id uint32) string
}

// Buffer is both a Sink and a Source; StreamWriter is a Sink; StreamReader
// is a Source.
var (
	_ Sink   = (*Buffer)(nil)
	_ Source = (*Buffer)(nil)
	_ Sink   = (*StreamWriter)(nil)
	_ Source = (*StreamReader)(nil)
)

// ForEach walks the stored records in order. It never fails; the error is
// the Source contract's.
func (b *Buffer) ForEach(fn func(Record)) error {
	for _, r := range b.records {
		fn(r)
	}
	return nil
}
