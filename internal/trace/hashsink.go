package trace

// HashSink is a Sink that stores nothing and instead folds every record —
// and every origin interning, in order — into a running FNV-1a 64 digest.
// Two simulations produce the same Sum64 iff they would have produced
// byte-identical Buffer contents (same record bytes in the same order, same
// origin table in the same intern order), which is exactly the fleet's
// per-host determinism contract. At 10k hosts a Buffer per host does not fit
// in memory; a HashSink is 8 bytes of state plus the origin intern map.
//
// Like every Sink it maintains full Counters, so overhead accounting and the
// sum(ByOp)+Unknown == Total invariant survive the switch from Buffer.
type HashSink struct {
	h        uint64
	origins  []string
	originID map[string]uint32
	counters Counters
	scratch  [RecordSize]byte
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

var _ Sink = (*HashSink)(nil)

// NewHashSink returns a digest-only sink. Origin 0 is pre-interned as "?"
// and folded, mirroring NewBuffer, so a HashSink and a Buffer fed the same
// operations agree on every origin ID.
func NewHashSink() *HashSink {
	s := &HashSink{h: fnvOffset64, originID: make(map[string]uint32)}
	s.origins = append(s.origins, "?")
	s.fold([]byte("?"))
	s.foldU32(0)
	return s
}

//lint:allocfree digest fold over caller-owned bytes
func (s *HashSink) fold(b []byte) {
	h := s.h
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	s.h = h
}

//lint:allocfree four fixed byte folds
func (s *HashSink) foldU32(v uint32) {
	h := s.h
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	s.h = h
}

// Origin interns an origin label, folding the label bytes and assigned ID
// into the digest on first intern (re-interning an existing label is a pure
// lookup, matching Buffer).
func (s *HashSink) Origin(name string) uint32 {
	if id, ok := s.originID[name]; ok {
		return id
	}
	id := uint32(len(s.origins))
	s.origins = append(s.origins, name)
	s.originID[name] = id
	s.fold([]byte(name))
	s.foldU32(id)
	return id
}

// OriginName resolves an origin ID; unknown IDs resolve to "?".
func (s *HashSink) OriginName(id uint32) string {
	if int(id) < len(s.origins) {
		return s.origins[id]
	}
	return s.origins[0]
}

// Log folds the record's exact 40-byte encoding into the digest and counts
// it. Nothing is stored, so nothing is ever dropped.
//
//lint:allocfree per-record hot path: putRecord into fixed scratch, then fold
func (s *HashSink) Log(r Record) {
	if int(r.Op) < int(nOps) {
		s.counters.ByOp[r.Op]++
	} else {
		s.counters.Unknown++
	}
	s.counters.Total++
	putRecord(s.scratch[:], r)
	s.fold(s.scratch[:])
}

// Sum64 returns the digest over everything logged and interned so far.
func (s *HashSink) Sum64() uint64 { return s.h }

// Counters returns a copy of the operation tallies.
func (s *HashSink) Counters() Counters { return s.counters }
