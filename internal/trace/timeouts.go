package trace

import "time"

// HTTPSink wire-protocol durations. These are host wall-clock durations
// (the sink talks to a real network service), not sim time — but the
// paper's Section 4 critique of unexplained magic values applies to our
// own configuration too, so each carries its provenance.
const (
	// DefaultHTTPTimeout bounds one ingest POST round trip. A batch is at
	// most a few MiB; ten seconds covers a loopback or LAN hop with two
	// orders of magnitude of slack, and failing faster than TCP's own
	// multi-minute give-up keeps the retry loop responsive.
	DefaultHTTPTimeout = 10 * time.Second

	// defaultBackoffBase is the first retry delay, doubling per attempt.
	// 50 ms is long enough to ride out a GC pause or accept-queue blip on
	// the server without stalling the producer's bounded batch queue.
	defaultBackoffBase = 50 * time.Millisecond

	// maxBackoff caps the exponential: with the default four retries the
	// sink gives up after ~1 s of backoff anyway; the cap keeps custom
	// high-retry configurations from sleeping unboundedly.
	maxBackoff = 2 * time.Second
)
