package trace

import (
	"io"
	"testing"
)

// TestLogZeroAlloc guards the two steady states of the Log hot path: while
// the buffer is within its preallocated storage, and once it is at capacity
// (the drop path). Both must be allocation-free; between them the only cost
// is amortized slice growth for buffers larger than the prealloc bound.
// Run under -count=1 in CI (scripts/check.sh) so a regression fails.
func TestLogZeroAlloc(t *testing.T) {
	rec := Record{T: 1, Op: OpSet, TimerID: 7, Timeout: 42, Origin: 1}

	within := NewBuffer(preallocRecords)
	if allocs := testing.AllocsPerRun(1000, func() { within.Log(rec) }); allocs != 0 {
		t.Errorf("Log within prealloc allocates %.1f objects/op, want 0", allocs)
	}

	full := NewBuffer(8)
	for i := 0; i < 8; i++ {
		full.Log(rec)
	}
	if allocs := testing.AllocsPerRun(1000, func() { full.Log(rec) }); allocs != 0 {
		t.Errorf("Log at capacity allocates %.1f objects/op, want 0", allocs)
	}
	if full.Len() != 8 {
		t.Fatalf("capacity overrun: Len = %d", full.Len())
	}
	if full.Counters().Dropped == 0 {
		t.Fatal("drop path not exercised")
	}

	disabled := NewBuffer(0)
	if allocs := testing.AllocsPerRun(1000, func() { disabled.Log(rec) }); allocs != 0 {
		t.Errorf("Log with tracing disabled allocates %.1f objects/op, want 0", allocs)
	}
}

// TestNewBufferPreallocBounded pins the memory contract: small buffers
// reserve exactly their capacity, huge buffers reserve only the bounded
// prealloc (a full DefaultCapacity buffer must not commit 512 MiB eagerly).
func TestNewBufferPreallocBounded(t *testing.T) {
	if got := cap(NewBuffer(100).records); got != 100 {
		t.Fatalf("small buffer prealloc = %d, want 100", got)
	}
	if got := cap(NewBuffer(DefaultCapacity).records); got != preallocRecords {
		t.Fatalf("large buffer prealloc = %d, want %d", got, preallocRecords)
	}
	if got := cap(NewBuffer(0).records); got != 0 {
		t.Fatalf("disabled buffer prealloc = %d, want 0", got)
	}
}

func BenchmarkLog(b *testing.B) {
	rec := Record{T: 1, Op: OpSet, TimerID: 7, Timeout: 42, Origin: 1}
	b.Run("store", func(b *testing.B) {
		buf := NewBuffer(DefaultCapacity)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Log(rec)
		}
	})
	b.Run("at-capacity", func(b *testing.B) {
		buf := NewBuffer(64)
		for i := 0; i < 64; i++ {
			buf.Log(rec)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Log(rec)
		}
	})
}

// TestStreamWriterLogZeroAlloc guards the spill hot path: once origins are
// interned, Log must be allocation-free both within a chunk and across chunk
// flushes (putRecord goes through the writer's scratch buffer; the frames
// land in the bufio buffer or the underlying writer without per-record
// allocation). Run without -race in CI, like the other alloc guards.
func TestStreamWriterLogZeroAlloc(t *testing.T) {
	rec := Record{T: 1, Op: OpSet, TimerID: 7, Timeout: 42, Origin: 1}

	within := NewStreamWriter(io.Discard) // default chunk far exceeds the run count
	within.Origin("kernel/x")
	if allocs := testing.AllocsPerRun(1000, func() { within.Log(rec) }); allocs != 0 {
		t.Errorf("Log within a chunk allocates %.1f objects/op, want 0", allocs)
	}

	flushing := NewStreamWriterSize(io.Discard, 64) // ~15 flushes over the run
	flushing.Origin("kernel/x")
	if allocs := testing.AllocsPerRun(1000, func() { flushing.Log(rec) }); allocs != 0 {
		t.Errorf("Log across chunk flushes allocates %.1f objects/op, want 0", allocs)
	}
	if err := flushing.Close(); err != nil {
		t.Fatal(err)
	}
	if c := flushing.Counters(); c.Dropped != 0 || c.Total == 0 {
		t.Fatalf("counters %+v: StreamWriter must never drop", c)
	}
}
