package trace

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"

	"sync/atomic"
	"time"
)

// Header names of the HTTPSink wire protocol, shared with the ingest
// service (internal/serve).
const (
	HeaderStream   = "X-Trace-Stream"
	HeaderSeq      = "X-Trace-Seq"
	HeaderInstance = "X-Trace-Instance"
)

// HTTPSink spills a v2 trace stream to a live trace service (timerstat
// -serve) while the simulation runs. It is a Sink: the producer logs
// records exactly as it would into a StreamWriter; the sink cuts the
// encoded stream into frame-aligned batches and POSTs them from a
// background sender goroutine with retry/backoff, so a slow network stalls
// the producer only when the bounded batch queue fills (backpressure), and
// a dead service eventually poisons the stream and counts every further
// frame as dropped instead of blocking the run.
//
// The wire protocol is the v2 stream format itself, split at frame
// boundaries: batch 0 carries the 8-byte header, the final batch ends with
// the 'C' counters footer written by Close. Each POST carries
// X-Trace-Stream (stream name), X-Trace-Seq (batch sequence number) and
// X-Trace-Instance (producer identity); the server acknowledges already-
// seen sequence numbers idempotently, so retrying a batch whose response
// was lost is safe.
type HTTPSink struct {
	endpoint string
	stream   string
	instance string

	client     *http.Client
	sleep      func(time.Duration)
	maxRetries int
	backoff    time.Duration

	sw      *StreamWriter
	capture *captureBuffer
	pending int // records since the last batch cut
	seq     uint64
	closed  bool

	ch   chan batchMsg
	done chan struct{}

	sentBatches    atomic.Uint64
	sentBytes      atomic.Uint64
	retries        atomic.Uint64
	droppedBatches atomic.Uint64
	droppedFrames  atomic.Uint64
	droppedRecords atomic.Uint64
	failed         atomic.Bool
	lastErr        atomic.Value // string
}

type batchMsg struct {
	seq     uint64
	data    []byte
	records int
}

// captureBuffer is the StreamWriter's underlying writer: it accumulates the
// encoded bytes of the current batch so cut can hand them whole to the
// sender.
type captureBuffer struct{ b []byte }

func (c *captureBuffer) Write(p []byte) (int, error) {
	c.b = append(c.b, p...)
	return len(p), nil
}

// HTTPSinkOptions configure a new HTTPSink; the zero value of every field
// selects a sensible default.
type HTTPSinkOptions struct {
	// Client performs the POSTs; nil means a client with DefaultHTTPTimeout.
	Client *http.Client
	// BatchRecords is the number of records per POST batch (also the
	// StreamWriter chunk size, so batches hold whole frames). <1 means
	// DefaultBatchRecords.
	BatchRecords int
	// QueueDepth is how many cut batches may wait for the sender before
	// Log blocks (producer backpressure). <1 means defaultQueueDepth.
	QueueDepth int
	// MaxRetries is how many times a failed POST is retried with
	// exponential backoff before the stream is poisoned. <0 means no
	// retries; 0 means defaultMaxRetries.
	MaxRetries int
	// Backoff is the first retry delay, doubling per attempt up to
	// maxBackoff. <=0 means defaultBackoffBase.
	Backoff time.Duration
	// Sleep is the backoff wait seam; nil means the host clock's sleep.
	// Tests inject a recorder to keep retry paths instant.
	Sleep func(time.Duration)
	// Instance identifies this producer process for retry idempotency;
	// "" derives one from the PID and a process-wide counter.
	Instance string
}

const (
	// DefaultBatchRecords is the per-POST record batch size: 1<<14 records
	// is ~640 KiB of payload, big enough to amortize HTTP overhead, small
	// enough that per-connection server memory stays bounded.
	DefaultBatchRecords = 1 << 14
	defaultQueueDepth   = 8
	defaultMaxRetries   = 4
)

var instanceCounter atomic.Uint64

// NewHTTPSink returns a sink streaming to the trace service at baseURL
// under the given stream name. baseURL may be the service root (the
// standard /api/ingest path is appended) or a full ingest URL. The stream
// opens lazily: no bytes hit the network until the first batch cut.
func NewHTTPSink(baseURL, stream string, opts HTTPSinkOptions) (*HTTPSink, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("trace: http sink url: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("trace: http sink url %q: need scheme and host", baseURL)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/api/ingest"
	}
	if stream == "" {
		return nil, fmt.Errorf("trace: http sink: empty stream name")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultHTTPTimeout}
	}
	sleep := opts.Sleep
	if sleep == nil {
		//lint:ignore wallclock the HTTP sink talks to a real service; backoff waits on the host clock by design, and tests inject Sleep
		sleep = time.Sleep
	}
	batch := opts.BatchRecords
	if batch < 1 {
		batch = DefaultBatchRecords
	}
	depth := opts.QueueDepth
	if depth < 1 {
		depth = defaultQueueDepth
	}
	retriesMax := opts.MaxRetries
	if retriesMax == 0 {
		retriesMax = defaultMaxRetries
	} else if retriesMax < 0 {
		retriesMax = 0
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = defaultBackoffBase
	}
	instance := opts.Instance
	if instance == "" {
		instance = strconv.Itoa(os.Getpid()) + "-" + strconv.FormatUint(instanceCounter.Add(1), 10)
	}
	capture := &captureBuffer{}
	h := &HTTPSink{
		endpoint:   u.String(),
		stream:     stream,
		instance:   instance,
		client:     client,
		sleep:      sleep,
		maxRetries: retriesMax,
		backoff:    backoff,
		sw:         NewStreamWriterSize(capture, batch),
		capture:    capture,
		ch:         make(chan batchMsg, depth),
		done:       make(chan struct{}),
	}
	go h.sender()
	return h, nil
}

// Origin interns an origin label with the standard first-seen ID
// assignment.
func (h *HTTPSink) Origin(name string) uint32 { return h.sw.Origin(name) }

// Log appends one record, cutting and enqueueing a batch every
// BatchRecords records. Log blocks only when the batch queue is full.
func (h *HTTPSink) Log(r Record) {
	h.sw.Log(r)
	h.pending++
	if h.pending >= h.sw.chunkCap() {
		h.cut()
	}
}

// chunkCap is the StreamWriter's configured chunk size.
func (s *StreamWriter) chunkCap() int { return cap(s.chunk) }

// cut flushes the StreamWriter (emitting whole frames into the capture
// buffer) and hands the accumulated bytes to the sender. Frame alignment is
// what makes batches independently decodable on the server.
func (h *HTTPSink) cut() {
	h.sw.Flush()
	if len(h.capture.b) == 0 {
		return
	}
	data := h.capture.b
	h.capture.b = nil
	msg := batchMsg{seq: h.seq, data: data, records: h.pending}
	h.seq++
	h.pending = 0
	if h.failed.Load() {
		h.drop(msg)
		return
	}
	h.ch <- msg
}

// drop accounts a batch that will never reach the service.
func (h *HTTPSink) drop(msg batchMsg) {
	h.droppedBatches.Add(1)
	h.droppedFrames.Add(uint64(countFrames(msg.data, msg.seq == 0)))
	h.droppedRecords.Add(uint64(msg.records))
}

// sender drains the batch queue in order, POSTing each batch with
// exponential-backoff retries. A batch that exhausts its retries (or hits a
// non-retryable status) poisons the stream: every later batch is counted
// dropped, because a gap would desynchronize the server's incremental
// origin table anyway.
func (h *HTTPSink) sender() {
	defer close(h.done)
	for msg := range h.ch {
		if h.failed.Load() {
			h.drop(msg)
			continue
		}
		if err := h.post(msg); err != nil {
			h.lastErr.Store(err.Error())
			h.failed.Store(true)
			h.drop(msg)
			continue
		}
		h.sentBatches.Add(1)
		h.sentBytes.Add(uint64(len(msg.data)))
	}
}

// post sends one batch, retrying transient failures.
func (h *HTTPSink) post(msg batchMsg) error {
	backoff := h.backoff
	var lastErr error
	for attempt := 0; attempt <= h.maxRetries; attempt++ {
		if attempt > 0 {
			h.retries.Add(1)
			h.sleep(backoff)
			if backoff < maxBackoff {
				backoff *= 2
			}
		}
		req, err := http.NewRequest(http.MethodPost, h.endpoint, bytes.NewReader(msg.data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(HeaderStream, h.stream)
		req.Header.Set(HeaderInstance, h.instance)
		req.Header.Set(HeaderSeq, strconv.FormatUint(msg.seq, 10))
		resp, err := h.client.Do(req)
		if err != nil {
			lastErr = err
			continue // network error: retry
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		switch {
		case resp.StatusCode < 300:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			lastErr = fmt.Errorf("trace: ingest %s seq %d: %s (%s)", h.stream, msg.seq, resp.Status, bytes.TrimSpace(body))
		default:
			// 4xx: the server will never accept this batch; don't retry.
			return fmt.Errorf("trace: ingest %s seq %d rejected: %s (%s)", h.stream, msg.seq, resp.Status, bytes.TrimSpace(body))
		}
	}
	return fmt.Errorf("trace: ingest %s gave up after %d retries: %w", h.stream, h.maxRetries, lastErr)
}

// Close finishes the stream: writes the counters footer, sends the final
// batch, waits for the sender to drain, and returns the terminal error if
// the stream was poisoned. Safe to call once.
func (h *HTTPSink) Close() error {
	if h.closed {
		return h.err()
	}
	h.closed = true
	h.sw.Close()
	h.cut()
	close(h.ch)
	<-h.done
	return h.err()
}

func (h *HTTPSink) err() error {
	if s, ok := h.lastErr.Load().(string); ok && s != "" {
		return fmt.Errorf("%s", s)
	}
	return nil
}

// Counters returns the operation tallies logged so far (sent or not).
func (h *HTTPSink) Counters() Counters { return h.sw.Counters() }

// HTTPSinkStats is a point-in-time snapshot of the sink's delivery
// accounting.
type HTTPSinkStats struct {
	SentBatches    uint64
	SentBytes      uint64
	Retries        uint64
	DroppedBatches uint64
	DroppedFrames  uint64
	DroppedRecords uint64
	Failed         bool
	LastErr        string
}

// Stats snapshots delivery accounting; safe to call from any goroutine.
func (h *HTTPSink) Stats() HTTPSinkStats {
	s := HTTPSinkStats{
		SentBatches:    h.sentBatches.Load(),
		SentBytes:      h.sentBytes.Load(),
		Retries:        h.retries.Load(),
		DroppedBatches: h.droppedBatches.Load(),
		DroppedFrames:  h.droppedFrames.Load(),
		DroppedRecords: h.droppedRecords.Load(),
		Failed:         h.failed.Load(),
	}
	if e, ok := h.lastErr.Load().(string); ok {
		s.LastErr = e
	}
	return s
}

var (
	_ Sink      = (*HTTPSink)(nil)
	_ Sink      = (*teeSink)(nil)
	_ io.Writer = (*captureBuffer)(nil)
)
