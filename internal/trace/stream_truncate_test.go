package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
)

// frameBoundaries scans an encoded v2 stream and returns the byte offset of
// every frame start, plus the end-of-stream offset. It is a test-local
// re-derivation of the framing so the reader under test cannot mask its own
// bugs.
func frameBoundaries(tb testing.TB, full []byte) []int {
	tb.Helper()
	le := binary.LittleEndian
	pos := headerSize
	bounds := []int{pos}
	for pos < len(full) {
		kind := full[pos]
		pos++
		switch kind {
		case frameOrigins:
			count := int(le.Uint32(full[pos:]))
			pos += 4
			for i := 0; i < count; i++ {
				n := int(le.Uint32(full[pos:]))
				pos += 4 + n
			}
		case frameRecords:
			count := int(le.Uint32(full[pos:]))
			pos += 4 + count*RecordSize
		case frameCounters:
			pos += countersSize
		default:
			tb.Fatalf("unknown frame %q at offset %d", kind, pos-1)
		}
		bounds = append(bounds, pos)
	}
	if pos != len(full) {
		tb.Fatalf("frame scan overran: pos %d, stream %d bytes", pos, len(full))
	}
	return bounds
}

// TestStreamTruncationReportsOffset cuts a 3-chunk fixture at every frame
// boundary — and mid-frame between each pair of boundaries — and requires
// the decode error to name the exact byte offset where the stream ended.
func TestStreamTruncationReportsOffset(t *testing.T) {
	full := buildV2(t, 12, 4) // 3 record chunks + interleaved 'O' frames
	bounds := frameBoundaries(t, full)
	if nframes := len(bounds) - 1; nframes < 5 {
		t.Fatalf("fixture too small: %d frames, want >= 5 (3 'R' + 'O's + 'C')", nframes)
	}

	cuts := make(map[int]bool)
	for i, b := range bounds {
		if b < len(full) {
			cuts[b] = true // cut exactly at a frame boundary
		}
		if i+1 < len(bounds) {
			cuts[(b+bounds[i+1])/2] = true // cut mid-frame
			cuts[b+1] = true               // cut right after the frame kind byte
		}
	}
	for cut := range cuts {
		sr, err := NewStreamReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		err = sr.ForEach(func(Record) {})
		if err == nil {
			t.Fatalf("cut %d: truncated stream decoded without error", cut)
		}
		want := fmt.Sprintf("byte offset %d", cut)
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("cut %d: error %q does not report %q", cut, err, want)
		}
	}

	// The untruncated stream still decodes cleanly.
	sr, err := NewStreamReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ForEach(func(Record) {}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamTruncationOffsetParallel pins the same contract through the
// parallel chunk pipeline: the frame walk is shared, so a truncation error
// must surface with its offset at any worker count, delivered after every
// chunk that preceded the cut.
func TestStreamTruncationOffsetParallel(t *testing.T) {
	full := buildV2(t, 12, 4)
	bounds := frameBoundaries(t, full)
	cut := (bounds[len(bounds)-2] + bounds[len(bounds)-1]) / 2 // mid-final-frame
	sr, err := NewStreamReader(bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	err = sr.ForEachChunk(4, func(Chunk) error { return nil })
	want := fmt.Sprintf("byte offset %d", cut)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("parallel decode error %q does not report %q", err, want)
	}
}
