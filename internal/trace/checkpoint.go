package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpoint codec: the on-disk keyframe format of the control plane
// (internal/control). A checkpoint is NOT a serialized heap — the engines'
// pending callbacks are closures and cannot cross a process boundary — it
// is the verification record of a deterministic run at one window boundary:
// enough to rebuild the run from its seed, fast-forward to the keyframe,
// and prove bit-for-bit that the reconstruction reached the same state
// before continuing. The framing reuses the v2 stream idioms: typed
// length-carrying frames after a magic+version header, strict error-not-
// panic decoding, implausibility bounds on every count, and a mandatory
// terminator (here a whole-file FNV-1a checksum) so truncation and trailing
// garbage are always detected:
//
//	header: magic "TCKP" | version u32 = 1
//	frames, repeated:
//	  'M' | seed i64 | window u64 | vtime i64 | host count u32 |
//	      label (u32 len | bytes) | config (u32 len | bytes)
//	      run metadata; exactly once, first. Config is an opaque blob the
//	      writer uses to rebuild the topology (the control plane stores
//	      JSON); the codec does not interpret it.
//	  'L' | u32 len | bytes
//	      the command log, opaque to this codec (internal/control encodes
//	      it); at most once.
//	  'H' | u32 count | count × host entries
//	      a chunk of per-host keyframe states, in host-index order across
//	      all 'H' frames. Chunked like v2 'R' frames so a 10k-host
//	      checkpoint never needs one giant frame.
//	  'E' | fnv64 u64
//	      terminator: FNV-1a 64 over every preceding byte including the
//	      header; exactly once, last. A file without it is truncated,
//	      bytes after it are garbage — both decode errors.
//
//	host entry: name (u32 len | bytes) | clock i64 | seq u64 |
//	    pending u32 | events hash u64 | rand draws u64 | digest u64 |
//	    down u8 | counters (nOps+3 × u64, the v2 'C' layout)

const (
	checkpointMagic   = "TCKP"
	checkpointVersion = 1

	ckFrameMeta     = 'M'
	ckFrameCommands = 'L'
	ckFrameHosts    = 'H'
	ckFrameEnd      = 'E'

	// ckHostChunk is the writer's hosts-per-'H'-frame chunk size.
	ckHostChunk = 256

	// maxCheckpointBlob bounds the label, config and command-log blobs a
	// reader will materialize from a declared length.
	maxCheckpointBlob = 1 << 24
	// maxCheckpointName bounds one host name.
	maxCheckpointName = 1 << 12
)

// CheckpointHost is one host's keyframe state: the engine summary
// (clock, scheduling sequence, pending-event hash, RNG position — see
// sim.EngineState), the host's cumulative trace digest and counters, and
// its up/down status. Everything a resumed run must reproduce exactly.
type CheckpointHost struct {
	Name       string
	Clock      int64
	Seq        uint64
	Pending    uint32
	EventsHash uint64
	RandDraws  uint64
	Digest     uint64
	Down       bool
	Counters   Counters
}

// Checkpoint is a decoded keyframe file.
type Checkpoint struct {
	// Label is free-form writer identification (scenario name).
	Label string
	// Seed is the run's root seed.
	Seed int64
	// Window is the number of completed fleet windows at the keyframe.
	Window uint64
	// VTime is the global virtual time floor at the keyframe boundary.
	VTime int64
	// Config is the opaque topology/run configuration blob.
	Config []byte
	// Commands is the opaque encoded command log (internal/control).
	Commands []byte
	// Hosts holds per-host states in host-index order.
	Hosts []CheckpointHost
}

// ckWriter tracks the running checksum over everything written.
type ckWriter struct {
	w   *bufio.Writer
	sum uint64
	err error
}

func (c *ckWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	for _, b := range p {
		c.sum ^= uint64(b)
		c.sum *= fnvPrime64
	}
	_, c.err = c.w.Write(p)
}

func (c *ckWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.write(b[:])
}

func (c *ckWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.write(b[:])
}

func (c *ckWriter) blob(p []byte) {
	c.u32(uint32(len(p)))
	c.write(p)
}

// WriteCheckpoint encodes cp to w in the chunked checkpoint format.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	if len(cp.Label) > maxCheckpointBlob || len(cp.Config) > maxCheckpointBlob || len(cp.Commands) > maxCheckpointBlob {
		return fmt.Errorf("trace: checkpoint blob exceeds %d bytes", maxCheckpointBlob)
	}
	c := &ckWriter{w: bufio.NewWriterSize(w, 1<<16), sum: fnvOffset64}
	c.write([]byte(checkpointMagic))
	c.u32(checkpointVersion)

	c.write([]byte{ckFrameMeta})
	c.u64(uint64(cp.Seed))
	c.u64(cp.Window)
	c.u64(uint64(cp.VTime))
	c.u32(uint32(len(cp.Hosts)))
	c.blob([]byte(cp.Label))
	c.blob(cp.Config)

	if len(cp.Commands) > 0 {
		c.write([]byte{ckFrameCommands})
		c.blob(cp.Commands)
	}

	for base := 0; base < len(cp.Hosts); base += ckHostChunk {
		hi := base + ckHostChunk
		if hi > len(cp.Hosts) {
			hi = len(cp.Hosts)
		}
		c.write([]byte{ckFrameHosts})
		c.u32(uint32(hi - base))
		for _, h := range cp.Hosts[base:hi] {
			if len(h.Name) > maxCheckpointName {
				return fmt.Errorf("trace: checkpoint host name exceeds %d bytes", maxCheckpointName)
			}
			c.blob([]byte(h.Name))
			c.u64(uint64(h.Clock))
			c.u64(h.Seq)
			c.u32(h.Pending)
			c.u64(h.EventsHash)
			c.u64(h.RandDraws)
			c.u64(h.Digest)
			down := byte(0)
			if h.Down {
				down = 1
			}
			c.write([]byte{down})
			for _, n := range h.Counters.ByOp {
				c.u64(n)
			}
			c.u64(h.Counters.Total)
			c.u64(h.Counters.Dropped)
			c.u64(h.Counters.Unknown)
		}
	}

	sum := c.sum // checksum covers everything before the 'E' frame
	c.write([]byte{ckFrameEnd})
	c.u64(sum)
	if c.err != nil {
		return c.err
	}
	return c.w.Flush()
}

// ckReader mirrors ckWriter: every consumed byte feeds the running
// checksum and the offset, so truncation errors are byte-exact.
type ckReader struct {
	br  *bufio.Reader
	sum uint64
	off int64
}

func (c *ckReader) read(p []byte, what string) error {
	n, err := io.ReadFull(c.br, p)
	for _, b := range p[:n] {
		c.sum ^= uint64(b)
		c.sum *= fnvPrime64
	}
	c.off += int64(n)
	if err == nil {
		return nil
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("trace: checkpoint %s truncated at byte offset %d: %w", what, c.off, io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("trace: reading checkpoint %s at byte offset %d: %w", what, c.off, err)
}

func (c *ckReader) u32(what string) (uint32, error) {
	var b [4]byte
	if err := c.read(b[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (c *ckReader) u64(what string) (uint64, error) {
	var b [8]byte
	if err := c.read(b[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (c *ckReader) blob(what string, max int) ([]byte, error) {
	n, err := c.u32(what + " length")
	if err != nil {
		return nil, err
	}
	if int(n) > max {
		return nil, fmt.Errorf("trace: checkpoint %s implausibly long (%d bytes)", what, n)
	}
	p := make([]byte, n)
	if err := c.read(p, what); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadCheckpoint decodes a checkpoint file. Framing is validated
// strictly: a missing or duplicated meta frame, host counts that disagree
// with the meta declaration, truncation anywhere, a checksum mismatch, or
// bytes after the terminator are all errors, never panics.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	c := &ckReader{br: bufio.NewReaderSize(r, 1<<16), sum: fnvOffset64}
	var hdr [8]byte
	if err := c.read(hdr[:], "header"); err != nil {
		return nil, err
	}
	if string(hdr[0:4]) != checkpointMagic {
		return nil, fmt.Errorf("trace: bad checkpoint magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != checkpointVersion {
		return nil, fmt.Errorf("trace: unsupported checkpoint version %d", v)
	}

	cp := &Checkpoint{}
	sawMeta, sawCommands := false, false
	declaredHosts := uint32(0)
	for {
		sumBefore := c.sum // checksum excludes the 'E' frame itself
		kind, err := c.br.ReadByte()
		if err == io.EOF {
			return nil, fmt.Errorf("trace: checkpoint truncated at byte offset %d: missing end frame", c.off)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading checkpoint frame at byte offset %d: %w", c.off, err)
		}
		c.sum ^= uint64(kind)
		c.sum *= fnvPrime64
		c.off++
		switch kind {
		case ckFrameMeta:
			if sawMeta {
				return nil, fmt.Errorf("trace: duplicate checkpoint meta frame at byte offset %d", c.off)
			}
			sawMeta = true
			seed, err := c.u64("meta seed")
			if err != nil {
				return nil, err
			}
			cp.Seed = int64(seed)
			if cp.Window, err = c.u64("meta window"); err != nil {
				return nil, err
			}
			vt, err := c.u64("meta vtime")
			if err != nil {
				return nil, err
			}
			cp.VTime = int64(vt)
			if declaredHosts, err = c.u32("meta host count"); err != nil {
				return nil, err
			}
			if declaredHosts > maxReasonable {
				return nil, fmt.Errorf("trace: implausible checkpoint host count (%d)", declaredHosts)
			}
			label, err := c.blob("label", maxCheckpointBlob)
			if err != nil {
				return nil, err
			}
			cp.Label = string(label)
			if cp.Config, err = c.blob("config", maxCheckpointBlob); err != nil {
				return nil, err
			}
		case ckFrameCommands:
			if !sawMeta {
				return nil, fmt.Errorf("trace: checkpoint command frame before meta at byte offset %d", c.off)
			}
			if sawCommands {
				return nil, fmt.Errorf("trace: duplicate checkpoint command frame at byte offset %d", c.off)
			}
			sawCommands = true
			var err error
			if cp.Commands, err = c.blob("command log", maxCheckpointBlob); err != nil {
				return nil, err
			}
		case ckFrameHosts:
			if !sawMeta {
				return nil, fmt.Errorf("trace: checkpoint host frame before meta at byte offset %d", c.off)
			}
			count, err := c.u32("host chunk header")
			if err != nil {
				return nil, err
			}
			if uint64(len(cp.Hosts))+uint64(count) > uint64(declaredHosts) {
				return nil, fmt.Errorf("trace: checkpoint host chunk overruns declared count (%d+%d > %d)",
					len(cp.Hosts), count, declaredHosts)
			}
			for i := uint32(0); i < count; i++ {
				var h CheckpointHost
				name, err := c.blob("host name", maxCheckpointName)
				if err != nil {
					return nil, err
				}
				h.Name = string(name)
				clock, err := c.u64("host clock")
				if err != nil {
					return nil, err
				}
				h.Clock = int64(clock)
				if h.Seq, err = c.u64("host seq"); err != nil {
					return nil, err
				}
				if h.Pending, err = c.u32("host pending"); err != nil {
					return nil, err
				}
				if h.EventsHash, err = c.u64("host events hash"); err != nil {
					return nil, err
				}
				if h.RandDraws, err = c.u64("host rand draws"); err != nil {
					return nil, err
				}
				if h.Digest, err = c.u64("host digest"); err != nil {
					return nil, err
				}
				var down [1]byte
				if err := c.read(down[:], "host down flag"); err != nil {
					return nil, err
				}
				if down[0] > 1 {
					return nil, fmt.Errorf("trace: checkpoint host %q has bad down flag %d", h.Name, down[0])
				}
				h.Down = down[0] == 1
				for op := range h.Counters.ByOp {
					if h.Counters.ByOp[op], err = c.u64("host counters"); err != nil {
						return nil, err
					}
				}
				if h.Counters.Total, err = c.u64("host counters"); err != nil {
					return nil, err
				}
				if h.Counters.Dropped, err = c.u64("host counters"); err != nil {
					return nil, err
				}
				if h.Counters.Unknown, err = c.u64("host counters"); err != nil {
					return nil, err
				}
				cp.Hosts = append(cp.Hosts, h)
			}
		case ckFrameEnd:
			want, err := c.u64("end checksum")
			if err != nil {
				return nil, err
			}
			if !sawMeta {
				return nil, fmt.Errorf("trace: checkpoint end frame before meta at byte offset %d", c.off)
			}
			if want != sumBefore {
				return nil, fmt.Errorf("trace: checkpoint checksum mismatch (file %016x, computed %016x)", want, sumBefore)
			}
			if uint32(len(cp.Hosts)) != declaredHosts {
				return nil, fmt.Errorf("trace: checkpoint has %d hosts, meta declared %d", len(cp.Hosts), declaredHosts)
			}
			if _, err := c.br.ReadByte(); err == nil {
				return nil, fmt.Errorf("trace: trailing garbage after checkpoint end frame at byte offset %d", c.off)
			} else if err != io.EOF {
				return nil, fmt.Errorf("trace: reading checkpoint end at byte offset %d: %w", c.off, err)
			}
			return cp, nil
		default:
			return nil, fmt.Errorf("trace: unknown checkpoint frame type %q at byte offset %d", kind, c.off-1)
		}
	}
}
