package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// buildCheckpoint makes a fixture big enough to span several 'H' chunks so
// the chunked framing is actually exercised.
func buildCheckpoint(tb testing.TB, hosts int) *Checkpoint {
	tb.Helper()
	cp := &Checkpoint{
		Label:    "fleet-1024/steered",
		Seed:     -42,
		Window:   317,
		VTime:    9_500_000_000,
		Config:   []byte(`{"webservers":8,"desktops":56}`),
		Commands: bytes.Repeat([]byte{0xAB, 0x01, 0x02}, 33),
	}
	for i := 0; i < hosts; i++ {
		h := CheckpointHost{
			Name:       fmt.Sprintf("ws-%04d", i),
			Clock:      9_500_000_000 + int64(i),
			Seq:        uint64(1000 + i),
			Pending:    uint32(i % 7),
			EventsHash: 0x9e3779b97f4a7c15 * uint64(i+1),
			RandDraws:  uint64(i * 13),
			Digest:     0xdeadbeef ^ uint64(i),
			Down:       i%11 == 3,
		}
		h.Counters.Total = uint64(i * 5)
		h.Counters.Dropped = uint64(i % 2)
		h.Counters.ByOp[i%int(nOps)] = uint64(i)
		cp.Hosts = append(cp.Hosts, h)
	}
	return cp
}

func encodeCheckpoint(tb testing.TB, cp *Checkpoint) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		tb.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundtrip(t *testing.T) {
	for _, hosts := range []int{0, 1, ckHostChunk, ckHostChunk + 1, 3*ckHostChunk + 7} {
		cp := buildCheckpoint(t, hosts)
		if hosts == 0 {
			cp.Commands = nil // also cover the commands-frame-absent path
		}
		got, err := ReadCheckpoint(bytes.NewReader(encodeCheckpoint(t, cp)))
		if err != nil {
			t.Fatalf("hosts=%d: ReadCheckpoint: %v", hosts, err)
		}
		// The writer omits the 'L' frame for empty command logs, so nil and
		// empty are the same on the wire; normalize before comparing.
		if len(cp.Commands) == 0 {
			cp.Commands, got.Commands = nil, nil
		}
		if len(cp.Hosts) == 0 {
			cp.Hosts, got.Hosts = nil, nil
		}
		if !reflect.DeepEqual(cp, got) {
			t.Fatalf("hosts=%d: roundtrip mismatch:\nwrote %+v\nread  %+v", hosts, cp, got)
		}
	}
}

// ckFrameBoundaries re-derives the checkpoint framing independently of the
// reader under test and returns every frame-start offset plus the end.
func ckFrameBoundaries(tb testing.TB, full []byte) []int {
	tb.Helper()
	le := binary.LittleEndian
	blob := func(pos int) int { return pos + 4 + int(le.Uint32(full[pos:])) }
	pos := 8 // magic + version
	bounds := []int{pos}
	for pos < len(full) {
		kind := full[pos]
		pos++
		switch kind {
		case ckFrameMeta:
			pos += 8 + 8 + 8 + 4 // seed, window, vtime, host count
			pos = blob(pos)      // label
			pos = blob(pos)      // config
		case ckFrameCommands:
			pos = blob(pos)
		case ckFrameHosts:
			count := int(le.Uint32(full[pos:]))
			pos += 4
			for i := 0; i < count; i++ {
				pos = blob(pos)                              // name
				pos += 8 + 8 + 4 + 8 + 8 + 8 + 1             // fixed fields
				pos += (int(nOps) + 3) * 8                   // counters
			}
		case ckFrameEnd:
			pos += 8
		default:
			tb.Fatalf("unknown checkpoint frame %q at offset %d", kind, pos-1)
		}
		bounds = append(bounds, pos)
	}
	if pos != len(full) {
		tb.Fatalf("frame scan overran: pos %d, file %d bytes", pos, len(full))
	}
	return bounds
}

// TestCheckpointTruncation cuts the file at every frame boundary and
// mid-frame between each pair, and requires an error (never a panic) that
// names the exact byte offset — the same contract the v2 stream holds.
func TestCheckpointTruncation(t *testing.T) {
	full := encodeCheckpoint(t, buildCheckpoint(t, 2*ckHostChunk+5)) // 3 'H' chunks
	bounds := ckFrameBoundaries(t, full)
	if nframes := len(bounds) - 1; nframes < 5 {
		t.Fatalf("fixture too small: %d frames, want >= 5 ('M' + 'L' + 3 'H' + 'E')", nframes)
	}

	cuts := map[int]bool{0: true, 1: true, 4: true, 7: true} // inside the header too
	for i, b := range bounds {
		if b < len(full) {
			cuts[b] = true // cut exactly at a frame boundary
		}
		if i+1 < len(bounds) {
			cuts[(b+bounds[i+1])/2] = true // cut mid-frame
			cuts[b+1] = true               // cut right after the frame kind byte
		}
	}
	for cut := range cuts {
		cp, err := ReadCheckpoint(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut %d: truncated checkpoint decoded: %+v", cut, cp)
		}
		want := fmt.Sprintf("byte offset %d", cut)
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("cut %d: error %q does not report %q", cut, err, want)
		}
	}

	// The untruncated file still decodes cleanly.
	if _, err := ReadCheckpoint(bytes.NewReader(full)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointBadMagicAndVersion(t *testing.T) {
	full := encodeCheckpoint(t, buildCheckpoint(t, 3))

	bad := bytes.Clone(full)
	copy(bad, "TSTR") // a v2 trace stream is not a checkpoint
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}

	bad = bytes.Clone(full)
	binary.LittleEndian.PutUint32(bad[4:], checkpointVersion+1)
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: err = %v", err)
	}
}

func TestCheckpointTrailingGarbage(t *testing.T) {
	full := encodeCheckpoint(t, buildCheckpoint(t, 3))
	for _, tail := range [][]byte{{0x00}, []byte("extra"), {ckFrameEnd}} {
		bad := append(bytes.Clone(full), tail...)
		if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "trailing garbage") {
			t.Fatalf("tail %v: err = %v", tail, err)
		}
	}
}

func TestCheckpointChecksumMismatch(t *testing.T) {
	full := encodeCheckpoint(t, buildCheckpoint(t, 3))
	bounds := ckFrameBoundaries(t, full)
	// Flip a bit inside the last host's digest field: pure payload, so the
	// framing still parses and only the checksum can catch it.
	off := bounds[len(bounds)-2] - (int(nOps)+3)*8 - 1 - 8 - 4 // back into digest
	bad := bytes.Clone(full)
	bad[off] ^= 0x80
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted payload: err = %v", err)
	}
}

func TestCheckpointImplausibleLengths(t *testing.T) {
	full := encodeCheckpoint(t, buildCheckpoint(t, 3))
	le := binary.LittleEndian

	// Host count in the meta frame: offset 8 ('M') + 1 + 24.
	bad := bytes.Clone(full)
	le.PutUint32(bad[8+1+24:], 1<<30)
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "implausibl") {
		t.Fatalf("huge host count: err = %v", err)
	}

	// Label length right after the host count.
	bad = bytes.Clone(full)
	le.PutUint32(bad[8+1+24+4:], 1<<31)
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "implausibl") {
		t.Fatalf("huge label length: err = %v", err)
	}

	// A host chunk claiming more hosts than the meta frame declared.
	bounds := ckFrameBoundaries(t, full)
	var hostsOff int
	for _, b := range bounds[:len(bounds)-1] {
		if full[b] == ckFrameHosts {
			hostsOff = b
			break
		}
	}
	bad = bytes.Clone(full)
	le.PutUint32(bad[hostsOff+1:], 4) // file has 3 hosts
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "overruns declared count") {
		t.Fatalf("overrunning host chunk: err = %v", err)
	}
}

func TestCheckpointWriterRejectsOversizedBlobs(t *testing.T) {
	cp := buildCheckpoint(t, 1)
	cp.Commands = make([]byte, maxCheckpointBlob+1)
	if err := WriteCheckpoint(&bytes.Buffer{}, cp); err == nil {
		t.Fatal("oversized command log accepted")
	}
	cp = buildCheckpoint(t, 1)
	cp.Hosts[0].Name = string(make([]byte, maxCheckpointName+1))
	if err := WriteCheckpoint(&bytes.Buffer{}, cp); err == nil {
		t.Fatal("oversized host name accepted")
	}
}

// FuzzReadCheckpoint: arbitrary bytes must never panic the reader, and any
// input that decodes successfully must re-encode and re-decode to the same
// value (the decoder accepts only canonical files).
func FuzzReadCheckpoint(f *testing.F) {
	f.Add(encodeCheckpoint(f, buildCheckpoint(f, 0)))
	f.Add(encodeCheckpoint(f, buildCheckpoint(f, 3)))
	f.Add(encodeCheckpoint(f, buildCheckpoint(f, ckHostChunk+1)))
	f.Add([]byte(checkpointMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		again, err := ReadCheckpoint(bytes.NewReader(encodeCheckpoint(t, cp)))
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !reflect.DeepEqual(cp, again) {
			t.Fatalf("re-encode changed value:\nfirst  %+v\nsecond %+v", cp, again)
		}
	})
}
