package trace

import (
	"bytes"
	"strings"
	"testing"

	"timerstudy/internal/sim"
)

// The decoder faces files we did not write: truncated copies, corrupted
// headers, and records carrying operation or flag values this version never
// emits. None of that may panic; valid streams must round-trip.

// mutate returns a copy of b with the byte at i set to v.
func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

func TestDecodeAdversarial(t *testing.T) {
	valid := buildEncoded(t, 3)
	cases := []struct {
		name  string
		input []byte
	}{
		{"empty", nil},
		{"bad magic", mutate(valid, 0, 'X')},
		{"future version", mutate(valid, 4, 99)},
		{"implausible origin count", mutate(valid, 19, 0xff)},
		{"origin length over limit", mutate(valid, 20, 0xff)},
		{"garbage", []byte(strings.Repeat("\xde\xad", 64))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(c.input)); err == nil {
				t.Fatalf("decoded %q without error", c.name)
			}
		})
	}
}

// TestDecodeToleratesUnknownOpsAndFlags feeds records whose Op and Flags
// fields are outside every defined constant: they must decode intact (the
// analysis layer is responsible for skipping what it does not understand),
// and stringifying them must not panic.
func TestDecodeToleratesUnknownOpsAndFlags(t *testing.T) {
	b := NewBuffer(4)
	o := b.Origin("kernel/x")
	recs := []Record{
		{T: 1, TimerID: 1, Op: Op(200), Flags: Flags(0xffff), Origin: o},
		{T: 2, TimerID: 2, Op: nOps, Origin: o},
		{T: 3, TimerID: 3, Op: OpSet, Timeout: -int64(sim.Second), Origin: o},
		{T: 4, TimerID: 4, Op: OpExpire, Origin: 0xdeadbeef}, // dangling origin id
	}
	for _, r := range recs {
		b.Log(r)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(recs) {
		t.Fatalf("len = %d", got.Len())
	}
	for i, r := range got.Records() {
		if r != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
		if r.Op.String() == "" {
			t.Fatalf("record %d: empty op name", i)
		}
	}
	if got.OriginName(0xdeadbeef) != "?" {
		t.Fatalf("dangling origin resolved to %q", got.OriginName(0xdeadbeef))
	}
}

// FuzzDecode hammers the decoder with arbitrary bytes. A decode either fails
// cleanly or yields a buffer that re-encodes and re-decodes to the same
// record stream.
func FuzzDecode(f *testing.F) {
	empty := NewBuffer(0)
	var seed bytes.Buffer
	if err := empty.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())

	full := NewBuffer(5)
	o := full.Origin("kernel/x")
	u := full.Origin("app/select")
	for i := 0; i < 5; i++ {
		full.Log(Record{T: sim.Time(i), TimerID: uint64(i % 2), Op: Op(i % 5),
			Origin: o + uint32(i%2)*(u-o), Timeout: int64(i) * int64(sim.Millisecond)})
	}
	var fullBuf bytes.Buffer
	if err := full.Encode(&fullBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(fullBuf.Bytes())
	f.Add(fullBuf.Bytes()[:len(fullBuf.Bytes())-7]) // truncated mid-record
	f.Add([]byte("TSTR"))                           // magic only

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatalf("re-encode of decoded stream: %v", err)
		}
		b2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if b2.Len() != b.Len() {
			t.Fatalf("round-trip record count %d != %d", b2.Len(), b.Len())
		}
		for i, r := range b2.Records() {
			if r != b.Records()[i] {
				t.Fatalf("round-trip record %d: %+v != %+v", i, r, b.Records()[i])
			}
		}
	})
}

// FuzzDecodeV2 hammers the chunked-stream decoder with arbitrary bytes. A
// replay either fails cleanly or yields records that survive a re-encode /
// re-decode round trip with origin names intact.
func FuzzDecodeV2(f *testing.F) {
	seed := func(nrec, chunk int) []byte {
		var buf bytes.Buffer
		sw := NewStreamWriterSize(&buf, chunk)
		k := sw.Origin("kernel/x")
		u := sw.Origin("app/select")
		for i := 0; i < nrec; i++ {
			sw.Log(Record{T: sim.Time(i), TimerID: uint64(i % 2), Op: Op(i % 5),
				Origin: k + uint32(i%2)*(u-k), Timeout: int64(i) * int64(sim.Millisecond)})
		}
		if err := sw.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(0, 4))
	f.Add(seed(5, 2))
	full := seed(10, 4)
	f.Add(full[:len(full)-7])             // truncated mid-footer
	f.Add(append(full, 0))                // trailing garbage
	f.Add([]byte("TSTR\x02\x00\x00\x00")) // header only, no footer
	f.Add([]byte("TSTR"))

	type flat struct {
		r      Record
		origin string
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []flat
		if err := sr.ForEach(func(r Record) {
			recs = append(recs, flat{r, sr.OriginName(r.Origin)})
		}); err != nil {
			return
		}
		// Valid stream: re-encode through a fresh writer (re-interning the
		// origin names) and replay; the logical records must round-trip.
		var buf bytes.Buffer
		sw := NewStreamWriterSize(&buf, 3)
		for _, fr := range recs {
			r := fr.r
			r.Origin = sw.Origin(fr.origin)
			sw.Log(r)
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		sr2, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-open: %v", err)
		}
		i := 0
		err = sr2.ForEach(func(r Record) {
			want := recs[i].r
			want.Origin = r.Origin // IDs may renumber; names are the identity
			if r != want {
				t.Fatalf("round-trip record %d: %+v != %+v", i, r, want)
			}
			if got := sr2.OriginName(r.Origin); got != recs[i].origin {
				t.Fatalf("round-trip origin %d: %q != %q", i, got, recs[i].origin)
			}
			i++
		})
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if i != len(recs) {
			t.Fatalf("round-trip count %d != %d", i, len(recs))
		}
	})
}
