package trace

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Parallel chunk pipeline. The v2 format frames records into independent
// chunks precisely so decode can fan out: one goroutine walks frames in file
// order (origin frames extend the string table serially; record frames are
// raw 40-byte-record payloads), a worker pool decodes chunk payloads, and
// chunks are delivered to the consumer strictly in frame order. Because a
// record chunk only references origins appended by earlier frames, the
// origin table visible when a chunk is read is complete for that chunk; the
// snapshot travels with it.

// maxChunkRecords bounds a single record chunk. Writers clamp their chunk
// size to it; readers reject larger counts as corrupt. It caps what a
// hostile 'R' frame header can make the decoder allocate (~40 MiB).
const maxChunkRecords = 1 << 20

// Chunk is one record chunk together with the origin table as of the frame
// that carried it.
type Chunk struct {
	// Records are the chunk's records, in stream order. The slice is only
	// valid during the ForEachChunk callback: storage is recycled afterwards.
	Records []Record
	// Origins is a read-only origin snapshot: Origins[id] is valid for every
	// Origin referenced by Records. Index 0 is "?".
	Origins []string
}

// OriginName resolves an origin ID against the chunk's snapshot; unknown IDs
// resolve to "?".
func (c Chunk) OriginName(id uint32) string {
	if int(id) < len(c.Origins) {
		return c.Origins[id]
	}
	return "?"
}

// ChunkedSource is a Source that can additionally deliver records a chunk at
// a time, decoding chunk payloads on up to workers goroutines. fn runs on
// the calling goroutine and sees chunks strictly in stream order regardless
// of worker count, so any fold over chunks is as deterministic as a serial
// walk. Chunk contents are only valid during the callback.
type ChunkedSource interface {
	Source
	ForEachChunk(workers int, fn func(Chunk) error) error
}

var (
	_ ChunkedSource = (*Buffer)(nil)
	_ ChunkedSource = (*StreamReader)(nil)
)

// ForEachChunk delivers the stored records in DefaultChunkRecords-sized
// chunks. The records are already decoded, so workers is ignored; the chunk
// slices alias the buffer and must not be mutated.
func (b *Buffer) ForEachChunk(workers int, fn func(Chunk) error) error {
	for i := 0; i < len(b.records); i += DefaultChunkRecords {
		end := min(i+DefaultChunkRecords, len(b.records))
		if err := fn(Chunk{Records: b.records[i:end], Origins: b.origins}); err != nil {
			return err
		}
	}
	return nil
}

// ForEachChunk decodes the stream's record chunks on up to workers
// goroutines and calls fn with each chunk, in frame order, on the calling
// goroutine. workers <= 1 decodes inline with no goroutines. Like ForEach it
// may be called once; memory is bounded by O(workers) chunks in flight plus
// the origin table.
func (s *StreamReader) ForEachChunk(workers int, fn func(Chunk) error) error {
	if s.consumed {
		return fmt.Errorf("trace: stream already consumed; reopen the file for a second pass")
	}
	s.consumed = true
	if workers <= 1 {
		var raw []byte
		var recs []Record
		return s.walkFrames(
			func(need int) []byte {
				if cap(raw) < need {
					raw = make([]byte, need)
				}
				return raw
			},
			func(p []byte, count int) error {
				var err error
				recs, err = decodeChunk(p, count, recs, len(s.origins))
				if err != nil {
					return err
				}
				return fn(Chunk{Records: recs, Origins: s.origins})
			})
	}
	return s.forEachChunkParallel(workers, fn)
}

// decodeChunk decodes count records from raw into dst (reused, returned
// re-sliced), validating every origin reference against a table of norigins
// entries.
func decodeChunk(raw []byte, count int, dst []Record, norigins int) ([]Record, error) {
	if cap(dst) < count {
		dst = make([]Record, count)
	}
	dst = dst[:count]
	for i := 0; i < count; i++ {
		r := getRecord(raw[i*RecordSize:])
		if int(r.Origin) >= norigins {
			return dst[:0], fmt.Errorf("trace: record origin %d out of range (table has %d)", r.Origin, norigins)
		}
		dst[i] = r
	}
	return dst, nil
}

// errStopped aborts the frame walk after the consumer has already failed;
// it never surfaces to the caller.
var errStopped = errors.New("trace: chunk pipeline stopped")

func (s *StreamReader) forEachChunkParallel(workers int, fn func(Chunk) error) error {
	type result struct {
		recs    []Record
		origins []string
		err     error
	}
	type job struct {
		raw     []byte
		count   int
		origins []string // snapshot; earlier entries are never mutated
		out     chan result
	}

	jobs := make(chan job, workers)
	// promises carries one single-buffered channel per chunk, in frame
	// order; delivery resolves them in order, which is the only ordering
	// mechanism the pipeline needs.
	promises := make(chan chan result, workers+1)
	stop := make(chan struct{})
	var rawPool, recPool sync.Pool

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				var dst []Record
				if v := recPool.Get(); v != nil {
					dst = v.([]Record)
				}
				recs, err := decodeChunk(j.raw, j.count, dst, len(j.origins))
				rawPool.Put(j.raw[:cap(j.raw)]) //nolint — same backing array, recycled
				j.out <- result{recs: recs, origins: j.origins, err: err}
			}
		}()
	}

	// Reader: walks frames sequentially (the origin table must grow in file
	// order), fanning record payloads out to the workers. Buffers come from
	// rawPool so in-flight memory stays O(workers) chunks.
	go func() {
		defer close(promises)
		defer close(jobs)
		err := s.walkFrames(
			func(need int) []byte {
				if v := rawPool.Get(); v != nil {
					if b := v.([]byte); cap(b) >= need {
						return b
					}
				}
				return make([]byte, need)
			},
			func(raw []byte, count int) error {
				out := make(chan result, 1)
				select {
				case promises <- out:
				case <-stop:
					return errStopped
				}
				select {
				case jobs <- job{raw: raw, count: count, origins: s.origins, out: out}:
				case <-stop:
					out <- result{err: errStopped}
					return errStopped
				}
				return nil
			})
		if err != nil && err != errStopped {
			// Frame-level error (truncation, bad frame, ...): deliver it in
			// order, after every chunk that preceded it.
			out := make(chan result, 1)
			out <- result{err: err}
			select {
			case promises <- out:
			case <-stop:
			}
		}
	}()

	var err error
	for out := range promises {
		res := <-out
		switch {
		case err != nil:
			// Already failed: drain remaining promises so the reader and
			// workers can exit.
		case res.err != nil:
			if res.err != errStopped {
				err = res.err
			}
			close(stop)
		default:
			err = fn(Chunk{Records: res.recs, Origins: res.origins})
			if err != nil {
				close(stop)
			}
		}
		if res.recs != nil {
			recPool.Put(res.recs[:cap(res.recs)])
		}
	}
	wg.Wait()
	return err
}

// ParallelForEach walks src in record order like src.ForEach, but decodes
// chunk payloads on up to workers goroutines when src supports it (fn still
// runs on the calling goroutine, in order, so it needs no locking).
// workers < 1 means GOMAXPROCS. Sources without chunked access fall back to
// a plain ForEach.
func ParallelForEach(src Source, workers int, fn func(Record)) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	cs, ok := src.(ChunkedSource)
	if !ok {
		return src.ForEach(fn)
	}
	return cs.ForEachChunk(workers, func(c Chunk) error {
		for _, r := range c.Records {
			fn(r)
		}
		return nil
	})
}
