// Package trace is the reproduction's relayfs/ETW analog: a bounded,
// in-memory binary event buffer recording every operation on every timer in
// a simulated system, together with the "call stack" information the paper's
// instrumentation captures (here: interned origin labels and process IDs).
//
// The design follows Section 3 of the paper:
//
//   - fixed-width binary records in a preallocated buffer (relayfs used a
//     512 MiB kernel buffer; we default to the equivalent record count),
//   - new events are dropped, never overwriting old ones, when full,
//   - records carry timestamp, operation, timer identity, process, origin
//     and the timeout value, which is everything the Section 4 analyses
//     need.
package trace

import (
	"fmt"
	"sort"
)
import "timerstudy/internal/sim"

// Op is the traced timer operation.
type Op uint8

const (
	// OpInit records timer-structure initialization (Linux init_timer).
	OpInit Op = iota
	// OpSet records arming a timer (__mod_timer / KeSetTimer / a syscall
	// supplying a timeout). Record.Timeout holds the relative timeout.
	OpSet
	// OpCancel records cancelation of a pending timer (del_timer /
	// KeCancelTimer / satisfied wait).
	OpCancel
	// OpExpire records delivery of a timer expiry (callback run, DPC
	// queued, wait timed out).
	OpExpire
	// OpWait records a thread blocking with a timeout (Vista wait fast
	// path; Linux schedule_timeout). It always pairs with a later OpCancel
	// (wait satisfied) or OpExpire (wait timed out) on the same TimerID.
	OpWait
	nOps
)

var opNames = [...]string{"init", "set", "cancel", "expire", "wait"}

// String returns the lower-case operation name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Flags annotate a record.
type Flags uint16

const (
	// FlagUser marks operations performed on behalf of user space (explicit
	// timer syscalls and timeouts passed to blocking syscalls). Unset means
	// a kernel-internal timer.
	FlagUser Flags = 1 << iota
	// FlagDeferrable marks Linux deferrable timers (2.6.22 feature).
	FlagDeferrable
	// FlagAbsolute marks a set with an absolute due time (Vista allows
	// both; Linux __mod_timer is always absolute in jiffies — the flag
	// records what the *caller* supplied).
	FlagAbsolute
	// FlagPeriodic marks a Vista periodic KTIMER set.
	FlagPeriodic
	// FlagSatisfied marks an OpCancel that ended a wait because the waited
	// object was signaled (rather than an explicit cancel).
	FlagSatisfied
)

// Record is one traced operation. The binary layout (Encode/Decode) is
// RecordSize (40) bytes, little-endian.
type Record struct {
	T       sim.Time // virtual timestamp
	TimerID uint64   // timer structure identity ("address")
	Timeout int64    // ns; relative timeout at OpSet/OpWait, 0 otherwise
	PID     int32    // owning process, 0 for the kernel
	Origin  uint32   // interned origin label (the "stack trace")
	Op      Op
	Flags   Flags
}

// IsUser reports whether the record was produced on behalf of user space.
func (r Record) IsUser() bool { return r.Flags&FlagUser != 0 }

// Counters tallies operations even when records are dropped or the buffer
// stores nothing; the Section 3.2 overhead experiment compares these between
// runs.
type Counters struct {
	ByOp    [nOps]uint64
	Total   uint64
	Dropped uint64
	// Unknown tallies records whose Op is outside the defined enum (possible
	// only through sink misuse or a decoded trace from a future version).
	// Every sink maintains the invariant sum(ByOp) + Unknown == Total, which
	// the v2 footer preserves on disk.
	Unknown uint64
}

// Buffer is the trace sink. A Buffer with capacity 0 counts operations but
// stores no records (the "tracing disabled" configuration of the overhead
// experiment). Buffers are not safe for concurrent use; simulations are
// single-threaded.
type Buffer struct {
	records  []Record
	cap      int
	origins  []string
	originID map[string]uint32
	counters Counters
}

// DefaultCapacity mirrors the paper's 512 MiB relayfs buffer at our
// RecordSize-byte record size.
const DefaultCapacity = 512 << 20 / RecordSize

// preallocRecords bounds the record storage reserved eagerly at NewBuffer:
// enough that short runs never grow the slice on the Log hot path, small
// enough (2.5 MiB) that nine parallel full-capacity buffers don't commit
// 512 MiB each up front. Buffers that outgrow it pay amortized append
// growth, exactly as before.
const preallocRecords = 1 << 16

// NewBuffer returns a buffer holding at most capRecords records.
func NewBuffer(capRecords int) *Buffer {
	b := &Buffer{cap: capRecords, originID: make(map[string]uint32)}
	if n := min(capRecords, preallocRecords); n > 0 {
		b.records = make([]Record, 0, n)
	}
	// Origin 0 is reserved for "unknown".
	b.origins = append(b.origins, "?")
	return b
}

// Origin interns an origin label and returns its ID. Labels play the role of
// the paper's kernel/user call stacks: they identify the code that operated
// on the timer (e.g. "kernel/tcp:retransmit" or "firefox/select").
func (b *Buffer) Origin(name string) uint32 {
	if id, ok := b.originID[name]; ok {
		return id
	}
	id := uint32(len(b.origins))
	b.origins = append(b.origins, name)
	b.originID[name] = id
	return id
}

// OriginName resolves an origin ID; unknown IDs resolve to "?".
func (b *Buffer) OriginName(id uint32) string {
	if int(id) < len(b.origins) {
		return b.origins[id]
	}
	return b.origins[0]
}

// Origins returns all interned origin labels, sorted.
func (b *Buffer) Origins() []string {
	out := make([]string, len(b.origins))
	copy(out, b.origins)
	sort.Strings(out)
	return out
}

// Log appends a record, dropping it (but still counting) if the buffer is
// full — relayfs semantics: old data is never overwritten.
//
//lint:allocfree per-record hot path; the capped backing array is preallocated by NewBuffer (TestLogZeroAlloc)
func (b *Buffer) Log(r Record) {
	if int(r.Op) < int(nOps) {
		b.counters.ByOp[r.Op]++
	} else {
		b.counters.Unknown++
	}
	b.counters.Total++
	if len(b.records) >= b.cap {
		b.counters.Dropped++
		return
	}
	b.records = append(b.records, r)
}

// Len returns the number of stored records.
func (b *Buffer) Len() int { return len(b.records) }

// Records returns the stored records. The slice aliases the buffer; callers
// must not mutate it.
func (b *Buffer) Records() []Record { return b.records }

// Counters returns a copy of the operation tallies.
func (b *Buffer) Counters() Counters { return b.counters }

// Reset discards stored records and counters but keeps interned origins, so
// origin IDs remain stable across phases of one experiment.
func (b *Buffer) Reset() {
	b.records = b.records[:0]
	b.counters = Counters{}
}
