package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Chunked v2 stream format. Unlike v1, nothing in the file depends on
// totals known only at the end of a run, so a StreamWriter spills records
// to disk while the simulation is still producing them and a StreamReader
// replays files larger than RAM:
//
//	header: magic "TSTR" | version u32 = 2
//	frames, repeated:
//	  'O' | u32 count | count × (u32 len | UTF-8 bytes)
//	      appends origins to the string table; origin 0 ("?") is implicit
//	      and never transmitted. A record chunk only references origins
//	      appended by earlier frames.
//	  'R' | u32 count | count × RecordSize bytes
//	      one chunk of records, same 40-byte layout as v1.
//	  'C' | ByOp[nOps] u64 | Total u64 | Dropped u64 | Unknown u64
//	      the counters footer; exactly once, last. A stream without it is
//	      truncated, bytes after it are garbage — both decode errors.
//
// The writer interns origins with the same first-seen ID assignment as
// Buffer, so a run traced through a StreamWriter produces byte-identical
// records to one traced through a Buffer.

const (
	version2 = 2

	frameOrigins  = 'O'
	frameRecords  = 'R'
	frameCounters = 'C'

	// DefaultChunkRecords is the StreamWriter's record-chunk size (~64 Ki
	// records, 2.5 MiB of payload per frame).
	DefaultChunkRecords = 1 << 16

	// countersSize is the byte size of the 'C' footer payload.
	countersSize = (int(nOps) + 3) * 8

	// headerSize is the byte size of the stream header (magic + version).
	headerSize = 8
)

// StreamWriter is a Sink that encodes records into the chunked v2 format as
// they arrive, spilling to w instead of holding the trace in memory. Log
// never drops records and is allocation-free outside origin interning and
// amortized chunk flushes. Errors on the underlying writer are sticky:
// check Err (or the Close result) after the run.
type StreamWriter struct {
	w        *bufio.Writer
	err      error
	closed   bool
	origins  []string
	originID map[string]uint32
	sent     int // origins already emitted in 'O' frames (origin 0 implicit)
	chunk    []Record
	// enc is the chunk-sized encode scratch: flushChunk serializes the whole
	// record chunk into it and hands the underlying writer one big Write
	// instead of one 40-byte write per record. Allocated lazily at the first
	// flush, then reused for the writer's lifetime.
	enc      []byte
	counters Counters
	scratch  [RecordSize]byte
}

// NewStreamWriter returns a v2 stream writer with the default chunk size.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return NewStreamWriterSize(w, DefaultChunkRecords)
}

// NewStreamWriterSize returns a v2 stream writer flushing record chunks of
// chunkRecords records (values < 1 mean the default; values above the
// format's maxChunkRecords are clamped so readers accept every chunk the
// writer can produce). The header is written immediately.
func NewStreamWriterSize(w io.Writer, chunkRecords int) *StreamWriter {
	if chunkRecords < 1 {
		chunkRecords = DefaultChunkRecords
	}
	if chunkRecords > maxChunkRecords {
		chunkRecords = maxChunkRecords
	}
	s := &StreamWriter{
		w:        bufio.NewWriterSize(w, 1<<16),
		originID: make(map[string]uint32),
		origins:  []string{"?"},
		sent:     1,
		chunk:    make([]Record, 0, chunkRecords),
	}
	var hdr [8]byte
	copy(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version2)
	_, err := s.w.Write(hdr[:])
	s.setErr(err)
	return s
}

func (s *StreamWriter) setErr(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// Origin interns an origin label with the same ID assignment as
// Buffer.Origin. New labels are transmitted in an 'O' frame before the next
// record chunk.
func (s *StreamWriter) Origin(name string) uint32 {
	if id, ok := s.originID[name]; ok {
		return id
	}
	id := uint32(len(s.origins))
	s.origins = append(s.origins, name)
	s.originID[name] = id
	return id
}

// Log appends one record to the current chunk, flushing the chunk to the
// underlying writer when full. StreamWriter never drops records. A record
// whose Op is outside the defined enum tallies under Counters.Unknown (it is
// still stored), keeping the footer invariant sum(ByOp)+Unknown == Total.
//
//lint:allocfree per-record hot path; chunk capacity is fixed at construction (TestStreamWriterLogZeroAlloc)
func (s *StreamWriter) Log(r Record) {
	if int(r.Op) < int(nOps) {
		s.counters.ByOp[r.Op]++
	} else {
		s.counters.Unknown++
	}
	s.counters.Total++
	s.chunk = append(s.chunk, r)
	if len(s.chunk) == cap(s.chunk) {
		s.flushChunk()
	}
}

// flushChunk emits pending origins and the buffered records as frames.
// Origins interned since the last flush are emitted even when no records are
// buffered, so a Flush/Close after a trailing Origin call never drops them.
func (s *StreamWriter) flushChunk() {
	if s.err != nil {
		s.chunk = s.chunk[:0]
		return
	}
	if s.sent < len(s.origins) {
		s.frameHeader(frameOrigins, uint32(len(s.origins)-s.sent))
		for _, name := range s.origins[s.sent:] {
			binary.LittleEndian.PutUint32(s.scratch[:4], uint32(len(name)))
			s.write(s.scratch[:4])
			_, err := s.w.WriteString(name)
			s.setErr(err)
		}
		s.sent = len(s.origins)
	}
	if len(s.chunk) == 0 {
		return
	}
	s.frameHeader(frameRecords, uint32(len(s.chunk)))
	need := len(s.chunk) * RecordSize
	if cap(s.enc) < need {
		s.enc = make([]byte, need)
	}
	enc := s.enc[:need]
	for i, r := range s.chunk {
		putRecord(enc[i*RecordSize:(i+1)*RecordSize], r)
	}
	s.write(enc)
	s.chunk = s.chunk[:0]
}

func (s *StreamWriter) frameHeader(kind byte, count uint32) {
	s.setErr(s.w.WriteByte(kind))
	binary.LittleEndian.PutUint32(s.scratch[:4], count)
	s.write(s.scratch[:4])
}

func (s *StreamWriter) write(p []byte) {
	_, err := s.w.Write(p)
	s.setErr(err)
}

// Flush writes any buffered partial chunk and flushes the underlying
// writer. The stream remains open for more records.
func (s *StreamWriter) Flush() error {
	s.flushChunk()
	s.setErr(s.w.Flush())
	return s.err
}

// Close flushes buffered records, writes the counters footer and flushes
// the underlying writer (it does not close it). Further Close calls return
// the sticky error without writing anything.
func (s *StreamWriter) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	s.flushChunk()
	if s.err == nil {
		s.setErr(s.w.WriteByte(frameCounters))
		var buf [countersSize]byte
		le := binary.LittleEndian
		for i, n := range s.counters.ByOp {
			le.PutUint64(buf[i*8:], n)
		}
		le.PutUint64(buf[nOps*8:], s.counters.Total)
		le.PutUint64(buf[(nOps+1)*8:], s.counters.Dropped)
		le.PutUint64(buf[(nOps+2)*8:], s.counters.Unknown)
		s.write(buf[:])
	}
	s.setErr(s.w.Flush())
	return s.err
}

// Err returns the first error seen on the underlying writer.
func (s *StreamWriter) Err() error { return s.err }

// Counters returns a copy of the operation tallies so far.
func (s *StreamWriter) Counters() Counters { return s.counters }

// StreamReader is a single-use Source replaying a v2 stream. It holds one
// chunk's worth of bytes plus the origin table — never the whole trace —
// so files larger than RAM decode in constant memory. Reopen the underlying
// file for a second pass.
type StreamReader struct {
	br       *bufio.Reader
	origins  []string
	counters Counters
	footer   bool
	consumed bool
	// off is the count of bytes consumed from the start of the stream,
	// including the 8-byte header. Truncation errors report it so a cut
	// stream (lost connection, partial upload) is diagnosable to the byte.
	off int64
}

// NewStreamReader validates the v2 header of r and returns a reader for the
// stream. Use Open to auto-detect the format version instead.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	v, err := readMagicVersion(br)
	if err != nil {
		return nil, err
	}
	if v != version2 {
		return nil, fmt.Errorf("trace: not a v2 stream (version %d)", v)
	}
	return newStreamReader(br), nil
}

func newStreamReader(br *bufio.Reader) *StreamReader {
	return &StreamReader{br: br, origins: []string{"?"}, off: headerSize}
}

// readFull fills p from the stream, advancing the consumed-byte offset by
// however much actually arrived. On a short read the error names what was
// being read and the exact byte offset where the stream ended.
func (s *StreamReader) readFull(p []byte, what string) error {
	n, err := io.ReadFull(s.br, p)
	s.off += int64(n)
	if err == nil {
		return nil
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("trace: %s truncated at byte offset %d: %w", what, s.off, io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("trace: reading %s at byte offset %d: %w", what, s.off, err)
}

// ForEach decodes the stream, calling fn for every record in order. It
// validates framing as it goes: a record referencing an origin the string
// table does not (yet) contain, a missing counters footer, or bytes after
// the footer are all errors, never panics. ForEach may be called once.
//
// Decoding is chunk-at-a-time (the frame walk shared with ForEachChunk), so
// memory is bounded by one chunk plus the origin table, never the trace.
func (s *StreamReader) ForEach(fn func(Record)) error {
	return s.ForEachChunk(1, func(c Chunk) error {
		for _, r := range c.Records {
			fn(r)
		}
		return nil
	})
}

// walkFrames reads the stream's frames in order. Origin frames extend
// s.origins in place; each record frame's payload is fetched via getBuf
// (which returns a buffer of at least need bytes, owned by the caller of
// walkFrames) and handed to emit together with its record count; the
// counters footer ends the walk. emit errors abort the walk unchanged.
func (s *StreamReader) walkFrames(getBuf func(need int) []byte, emit func(raw []byte, count int) error) error {
	var buf [8]byte
	le := binary.LittleEndian
	for {
		kind, err := s.br.ReadByte()
		if err == io.EOF {
			return fmt.Errorf("trace: stream truncated at byte offset %d: missing counters footer", s.off)
		}
		if err != nil {
			return fmt.Errorf("trace: reading frame at byte offset %d: %w", s.off, err)
		}
		s.off++
		switch kind {
		case frameOrigins:
			if err := s.readFull(buf[:4], "origin frame header"); err != nil {
				return err
			}
			count := le.Uint32(buf[:4])
			if uint64(len(s.origins))+uint64(count) > maxReasonable {
				return fmt.Errorf("trace: implausible origin table (%d entries)", uint64(len(s.origins))+uint64(count))
			}
			for i := uint32(0); i < count; i++ {
				if err := s.readFull(buf[:4], "origin length"); err != nil {
					return err
				}
				n := le.Uint32(buf[:4])
				if n > 1<<16 {
					return fmt.Errorf("trace: origin %d implausibly long (%d)", len(s.origins), n)
				}
				name := make([]byte, n)
				if err := s.readFull(name, fmt.Sprintf("origin %d", len(s.origins))); err != nil {
					return err
				}
				s.origins = append(s.origins, string(name))
			}
		case frameRecords:
			if err := s.readFull(buf[:4], "record chunk header"); err != nil {
				return err
			}
			count := le.Uint32(buf[:4])
			if count > maxChunkRecords {
				// Tighter than maxReasonable: the chunk is materialized, so
				// the bound also caps what a corrupt count can allocate.
				return fmt.Errorf("trace: implausible record chunk (%d records)", count)
			}
			raw := getBuf(int(count) * RecordSize)[:int(count)*RecordSize]
			if err := s.readFull(raw, "record chunk"); err != nil {
				return err
			}
			if err := emit(raw, int(count)); err != nil {
				return err
			}
		case frameCounters:
			var foot [countersSize]byte
			if err := s.readFull(foot[:], "counters footer"); err != nil {
				return err
			}
			for i := range s.counters.ByOp {
				s.counters.ByOp[i] = le.Uint64(foot[i*8:])
			}
			s.counters.Total = le.Uint64(foot[nOps*8:])
			s.counters.Dropped = le.Uint64(foot[(nOps+1)*8:])
			s.counters.Unknown = le.Uint64(foot[(nOps+2)*8:])
			s.footer = true
			if _, err := s.br.ReadByte(); err == nil {
				return fmt.Errorf("trace: trailing garbage after counters footer at byte offset %d", s.off)
			} else if err != io.EOF {
				return fmt.Errorf("trace: reading stream end at byte offset %d: %w", s.off, err)
			}
			return nil
		default:
			return fmt.Errorf("trace: unknown frame type %q", kind)
		}
	}
}

// OriginName resolves an origin ID against the string table read so far;
// unknown IDs resolve to "?". During ForEach the table is complete for
// every record already delivered.
func (s *StreamReader) OriginName(id uint32) string {
	if int(id) < len(s.origins) {
		return s.origins[id]
	}
	return s.origins[0]
}

// Counters returns the footer tallies; ok is false until ForEach has
// consumed the stream through the footer.
func (s *StreamReader) Counters() (c Counters, ok bool) {
	return s.counters, s.footer
}

// Open auto-detects the trace format version of r and returns a Source:
// a fully decoded Buffer for v1 files, a constant-memory StreamReader for
// v2 streams.
func Open(r io.Reader) (Source, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	v, err := readMagicVersion(br)
	if err != nil {
		return nil, err
	}
	switch v {
	case version:
		return decodeV1(br)
	case version2:
		return newStreamReader(br), nil
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
}
