package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Chunked v2 stream format. Unlike v1, nothing in the file depends on
// totals known only at the end of a run, so a StreamWriter spills records
// to disk while the simulation is still producing them and a StreamReader
// replays files larger than RAM:
//
//	header: magic "TSTR" | version u32 = 2
//	frames, repeated:
//	  'O' | u32 count | count × (u32 len | UTF-8 bytes)
//	      appends origins to the string table; origin 0 ("?") is implicit
//	      and never transmitted. A record chunk only references origins
//	      appended by earlier frames.
//	  'R' | u32 count | count × RecordSize bytes
//	      one chunk of records, same 40-byte layout as v1.
//	  'C' | ByOp[nOps] u64 | Total u64 | Dropped u64
//	      the counters footer; exactly once, last. A stream without it is
//	      truncated, bytes after it are garbage — both decode errors.
//
// The writer interns origins with the same first-seen ID assignment as
// Buffer, so a run traced through a StreamWriter produces byte-identical
// records to one traced through a Buffer.

const (
	version2 = 2

	frameOrigins  = 'O'
	frameRecords  = 'R'
	frameCounters = 'C'

	// DefaultChunkRecords is the StreamWriter's record-chunk size (~64 Ki
	// records, 2.5 MiB of payload per frame).
	DefaultChunkRecords = 1 << 16

	// countersSize is the byte size of the 'C' footer payload.
	countersSize = (int(nOps) + 2) * 8
)

// StreamWriter is a Sink that encodes records into the chunked v2 format as
// they arrive, spilling to w instead of holding the trace in memory. Log
// never drops records and is allocation-free outside origin interning and
// amortized chunk flushes. Errors on the underlying writer are sticky:
// check Err (or the Close result) after the run.
type StreamWriter struct {
	w        *bufio.Writer
	err      error
	closed   bool
	origins  []string
	originID map[string]uint32
	sent     int // origins already emitted in 'O' frames (origin 0 implicit)
	chunk    []Record
	counters Counters
	scratch  [RecordSize]byte
}

// NewStreamWriter returns a v2 stream writer with the default chunk size.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return NewStreamWriterSize(w, DefaultChunkRecords)
}

// NewStreamWriterSize returns a v2 stream writer flushing record chunks of
// chunkRecords records (values < 1 mean the default). The header is written
// immediately.
func NewStreamWriterSize(w io.Writer, chunkRecords int) *StreamWriter {
	if chunkRecords < 1 {
		chunkRecords = DefaultChunkRecords
	}
	s := &StreamWriter{
		w:        bufio.NewWriterSize(w, 1<<16),
		originID: make(map[string]uint32),
		origins:  []string{"?"},
		sent:     1,
		chunk:    make([]Record, 0, chunkRecords),
	}
	var hdr [8]byte
	copy(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version2)
	_, err := s.w.Write(hdr[:])
	s.setErr(err)
	return s
}

func (s *StreamWriter) setErr(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// Origin interns an origin label with the same ID assignment as
// Buffer.Origin. New labels are transmitted in an 'O' frame before the next
// record chunk.
func (s *StreamWriter) Origin(name string) uint32 {
	if id, ok := s.originID[name]; ok {
		return id
	}
	id := uint32(len(s.origins))
	s.origins = append(s.origins, name)
	s.originID[name] = id
	return id
}

// Log appends one record to the current chunk, flushing the chunk to the
// underlying writer when full. StreamWriter never drops records.
//
//lint:allocfree per-record hot path; chunk capacity is fixed at construction (TestStreamWriterLogZeroAlloc)
func (s *StreamWriter) Log(r Record) {
	if int(r.Op) < int(nOps) {
		s.counters.ByOp[r.Op]++
	}
	s.counters.Total++
	s.chunk = append(s.chunk, r)
	if len(s.chunk) == cap(s.chunk) {
		s.flushChunk()
	}
}

// flushChunk emits pending origins and the buffered records as frames.
//
//lint:allocfree flush reuses the writer's scratch buffer for every frame
func (s *StreamWriter) flushChunk() {
	if len(s.chunk) == 0 || s.err != nil {
		s.chunk = s.chunk[:0]
		return
	}
	if s.sent < len(s.origins) {
		s.frameHeader(frameOrigins, uint32(len(s.origins)-s.sent))
		for _, name := range s.origins[s.sent:] {
			binary.LittleEndian.PutUint32(s.scratch[:4], uint32(len(name)))
			s.write(s.scratch[:4])
			_, err := s.w.WriteString(name)
			s.setErr(err)
		}
		s.sent = len(s.origins)
	}
	s.frameHeader(frameRecords, uint32(len(s.chunk)))
	for _, r := range s.chunk {
		putRecord(s.scratch[:], r)
		s.write(s.scratch[:])
	}
	s.chunk = s.chunk[:0]
}

func (s *StreamWriter) frameHeader(kind byte, count uint32) {
	s.setErr(s.w.WriteByte(kind))
	binary.LittleEndian.PutUint32(s.scratch[:4], count)
	s.write(s.scratch[:4])
}

func (s *StreamWriter) write(p []byte) {
	_, err := s.w.Write(p)
	s.setErr(err)
}

// Flush writes any buffered partial chunk and flushes the underlying
// writer. The stream remains open for more records.
func (s *StreamWriter) Flush() error {
	s.flushChunk()
	s.setErr(s.w.Flush())
	return s.err
}

// Close flushes buffered records, writes the counters footer and flushes
// the underlying writer (it does not close it). Further Close calls return
// the sticky error without writing anything.
func (s *StreamWriter) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	s.flushChunk()
	if s.err == nil {
		s.setErr(s.w.WriteByte(frameCounters))
		var buf [countersSize]byte
		le := binary.LittleEndian
		for i, n := range s.counters.ByOp {
			le.PutUint64(buf[i*8:], n)
		}
		le.PutUint64(buf[nOps*8:], s.counters.Total)
		le.PutUint64(buf[(nOps+1)*8:], s.counters.Dropped)
		s.write(buf[:])
	}
	s.setErr(s.w.Flush())
	return s.err
}

// Err returns the first error seen on the underlying writer.
func (s *StreamWriter) Err() error { return s.err }

// Counters returns a copy of the operation tallies so far.
func (s *StreamWriter) Counters() Counters { return s.counters }

// StreamReader is a single-use Source replaying a v2 stream. It holds one
// chunk's worth of bytes plus the origin table — never the whole trace —
// so files larger than RAM decode in constant memory. Reopen the underlying
// file for a second pass.
type StreamReader struct {
	br       *bufio.Reader
	origins  []string
	counters Counters
	footer   bool
	consumed bool
}

// NewStreamReader validates the v2 header of r and returns a reader for the
// stream. Use Open to auto-detect the format version instead.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	v, err := readMagicVersion(br)
	if err != nil {
		return nil, err
	}
	if v != version2 {
		return nil, fmt.Errorf("trace: not a v2 stream (version %d)", v)
	}
	return newStreamReader(br), nil
}

func newStreamReader(br *bufio.Reader) *StreamReader {
	return &StreamReader{br: br, origins: []string{"?"}}
}

// ForEach decodes the stream, calling fn for every record in order. It
// validates framing as it goes: a record referencing an origin the string
// table does not (yet) contain, a missing counters footer, or bytes after
// the footer are all errors, never panics. ForEach may be called once.
func (s *StreamReader) ForEach(fn func(Record)) error {
	if s.consumed {
		return fmt.Errorf("trace: stream already consumed; reopen the file for a second pass")
	}
	s.consumed = true
	var buf [RecordSize]byte
	le := binary.LittleEndian
	for {
		kind, err := s.br.ReadByte()
		if err == io.EOF {
			return fmt.Errorf("trace: stream truncated: missing counters footer")
		}
		if err != nil {
			return fmt.Errorf("trace: reading frame: %w", err)
		}
		switch kind {
		case frameOrigins:
			if _, err := io.ReadFull(s.br, buf[:4]); err != nil {
				return fmt.Errorf("trace: reading origin frame: %w", err)
			}
			count := le.Uint32(buf[:4])
			if uint64(len(s.origins))+uint64(count) > maxReasonable {
				return fmt.Errorf("trace: implausible origin table (%d entries)", uint64(len(s.origins))+uint64(count))
			}
			for i := uint32(0); i < count; i++ {
				if _, err := io.ReadFull(s.br, buf[:4]); err != nil {
					return fmt.Errorf("trace: reading origin length: %w", err)
				}
				n := le.Uint32(buf[:4])
				if n > 1<<16 {
					return fmt.Errorf("trace: origin %d implausibly long (%d)", len(s.origins), n)
				}
				name := make([]byte, n)
				if _, err := io.ReadFull(s.br, name); err != nil {
					return fmt.Errorf("trace: reading origin %d: %w", len(s.origins), err)
				}
				s.origins = append(s.origins, string(name))
			}
		case frameRecords:
			if _, err := io.ReadFull(s.br, buf[:4]); err != nil {
				return fmt.Errorf("trace: reading record chunk header: %w", err)
			}
			count := le.Uint32(buf[:4])
			if count > maxReasonable {
				return fmt.Errorf("trace: implausible record chunk (%d records)", count)
			}
			for i := uint32(0); i < count; i++ {
				if _, err := io.ReadFull(s.br, buf[:]); err != nil {
					return fmt.Errorf("trace: reading record: %w", err)
				}
				r := getRecord(buf[:])
				if int(r.Origin) >= len(s.origins) {
					return fmt.Errorf("trace: record origin %d out of range (table has %d)", r.Origin, len(s.origins))
				}
				fn(r)
			}
		case frameCounters:
			var foot [countersSize]byte
			if _, err := io.ReadFull(s.br, foot[:]); err != nil {
				return fmt.Errorf("trace: reading counters footer: %w", err)
			}
			for i := range s.counters.ByOp {
				s.counters.ByOp[i] = le.Uint64(foot[i*8:])
			}
			s.counters.Total = le.Uint64(foot[nOps*8:])
			s.counters.Dropped = le.Uint64(foot[(nOps+1)*8:])
			s.footer = true
			if _, err := s.br.ReadByte(); err == nil {
				return fmt.Errorf("trace: trailing garbage after counters footer")
			} else if err != io.EOF {
				return fmt.Errorf("trace: reading stream end: %w", err)
			}
			return nil
		default:
			return fmt.Errorf("trace: unknown frame type %q", kind)
		}
	}
}

// OriginName resolves an origin ID against the string table read so far;
// unknown IDs resolve to "?". During ForEach the table is complete for
// every record already delivered.
func (s *StreamReader) OriginName(id uint32) string {
	if int(id) < len(s.origins) {
		return s.origins[id]
	}
	return s.origins[0]
}

// Counters returns the footer tallies; ok is false until ForEach has
// consumed the stream through the footer.
func (s *StreamReader) Counters() (c Counters, ok bool) {
	return s.counters, s.footer
}

// Open auto-detects the trace format version of r and returns a Source:
// a fully decoded Buffer for v1 files, a constant-memory StreamReader for
// v2 streams.
func Open(r io.Reader) (Source, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	v, err := readMagicVersion(br)
	if err != nil {
		return nil, err
	}
	switch v {
	case version:
		return decodeV1(br)
	case version2:
		return newStreamReader(br), nil
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
}
