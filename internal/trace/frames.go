package trace

import (
	"encoding/binary"
	"fmt"
)

// FrameDecoder incrementally decodes a v2 stream that arrives as discrete
// frame-aligned byte batches (HTTP POST bodies from an HTTPSink) rather
// than as an io.Reader. Each Feed call decodes every frame in the batch:
// origin frames extend the string table, record frames are decoded into a
// reused scratch slice and handed to emit as a Chunk, and the counters
// footer closes the stream. Memory is bounded by one chunk plus the origin
// table regardless of how many batches arrive — the same budget as
// StreamReader.
//
// Batches must be frame-aligned: the producer cuts its stream only between
// frames, so a batch that ends mid-frame means corruption or a framing bug
// and is an error, never buffered. The first batch starts with the 8-byte
// stream header.
type FrameDecoder struct {
	origins    []string
	counters   Counters
	footer     bool
	headerDone bool
	off        int64 // bytes consumed across all batches, header included
	frames     int64
	recs       []Record
}

// NewFrameDecoder returns a decoder expecting the stream header at the
// start of the first batch.
func NewFrameDecoder() *FrameDecoder {
	return &FrameDecoder{origins: []string{"?"}}
}

// need validates that n bytes of the current batch remain at pos; a short
// batch reports the absolute stream offset where the data ran out.
func (d *FrameDecoder) need(batch []byte, pos, n int, what string) error {
	if len(batch)-pos < n {
		return fmt.Errorf("trace: %s truncated at byte offset %d: batch not frame-aligned",
			what, d.off+int64(len(batch)))
	}
	return nil
}

// Feed decodes every frame in batch, calling emit for each record chunk on
// the calling goroutine. Chunk contents are only valid during the callback.
// Errors (emit's or framing) poison nothing by themselves, but a caller
// should stop feeding a stream that has returned one: the string table may
// be mid-extension.
func (d *FrameDecoder) Feed(batch []byte, emit func(Chunk) error) error {
	pos := 0
	le := binary.LittleEndian
	if !d.headerDone {
		if err := d.need(batch, 0, headerSize, "stream header"); err != nil {
			return err
		}
		if string(batch[:4]) != magic {
			return fmt.Errorf("trace: bad magic %q", batch[:4])
		}
		if v := le.Uint32(batch[4:8]); v != version2 {
			return fmt.Errorf("trace: not a v2 stream (version %d)", v)
		}
		d.headerDone = true
		pos = headerSize
	}
	for pos < len(batch) {
		if d.footer {
			return fmt.Errorf("trace: trailing garbage after counters footer at byte offset %d", d.off+int64(pos))
		}
		kind := batch[pos]
		pos++
		d.frames++
		switch kind {
		case frameOrigins:
			if err := d.need(batch, pos, 4, "origin frame header"); err != nil {
				return err
			}
			count := le.Uint32(batch[pos:])
			pos += 4
			if uint64(len(d.origins))+uint64(count) > maxReasonable {
				return fmt.Errorf("trace: implausible origin table (%d entries)", uint64(len(d.origins))+uint64(count))
			}
			for i := uint32(0); i < count; i++ {
				if err := d.need(batch, pos, 4, "origin length"); err != nil {
					return err
				}
				n := le.Uint32(batch[pos:])
				pos += 4
				if n > 1<<16 {
					return fmt.Errorf("trace: origin %d implausibly long (%d)", len(d.origins), n)
				}
				if err := d.need(batch, pos, int(n), "origin name"); err != nil {
					return err
				}
				d.origins = append(d.origins, string(batch[pos:pos+int(n)]))
				pos += int(n)
			}
		case frameRecords:
			if err := d.need(batch, pos, 4, "record chunk header"); err != nil {
				return err
			}
			count := le.Uint32(batch[pos:])
			pos += 4
			if count > maxChunkRecords {
				return fmt.Errorf("trace: implausible record chunk (%d records)", count)
			}
			payload := int(count) * RecordSize
			if err := d.need(batch, pos, payload, "record chunk"); err != nil {
				return err
			}
			var err error
			d.recs, err = decodeChunk(batch[pos:pos+payload], int(count), d.recs, len(d.origins))
			if err != nil {
				return err
			}
			pos += payload
			if err := emit(Chunk{Records: d.recs, Origins: d.origins}); err != nil {
				return err
			}
		case frameCounters:
			if err := d.need(batch, pos, countersSize, "counters footer"); err != nil {
				return err
			}
			for i := range d.counters.ByOp {
				d.counters.ByOp[i] = le.Uint64(batch[pos+i*8:])
			}
			d.counters.Total = le.Uint64(batch[pos+int(nOps)*8:])
			d.counters.Dropped = le.Uint64(batch[pos+(int(nOps)+1)*8:])
			d.counters.Unknown = le.Uint64(batch[pos+(int(nOps)+2)*8:])
			d.footer = true
			pos += countersSize
		default:
			return fmt.Errorf("trace: unknown frame type %q at byte offset %d", kind, d.off+int64(pos-1))
		}
	}
	d.off += int64(len(batch))
	return nil
}

// Done reports whether the counters footer has been decoded — the stream's
// orderly end.
func (d *FrameDecoder) Done() bool { return d.footer }

// Counters returns the footer tallies; ok is false until the footer frame
// has been fed.
func (d *FrameDecoder) Counters() (c Counters, ok bool) {
	return d.counters, d.footer
}

// Offset returns the count of stream bytes consumed so far, header
// included.
func (d *FrameDecoder) Offset() int64 { return d.off }

// Frames returns how many frames have been decoded so far.
func (d *FrameDecoder) Frames() int64 { return d.frames }

// OriginName resolves an origin ID against the table decoded so far;
// unknown IDs resolve to "?".
func (d *FrameDecoder) OriginName(id uint32) string {
	if int(id) < len(d.origins) {
		return d.origins[id]
	}
	return d.origins[0]
}

// countFrames counts the complete frames in a frame-aligned batch,
// tolerating (and stopping at) malformed framing: it is drop accounting,
// not validation. hasHeader says the batch begins with the stream header.
func countFrames(b []byte, hasHeader bool) int {
	le := binary.LittleEndian
	pos := 0
	if hasHeader {
		if len(b) < headerSize {
			return 0
		}
		pos = headerSize
	}
	frames := 0
	for pos < len(b) {
		kind := b[pos]
		pos++
		switch kind {
		case frameOrigins:
			if len(b)-pos < 4 {
				return frames
			}
			count := int(le.Uint32(b[pos:]))
			pos += 4
			for i := 0; i < count; i++ {
				if len(b)-pos < 4 {
					return frames
				}
				n := int(le.Uint32(b[pos:]))
				pos += 4 + n
				if pos > len(b) {
					return frames
				}
			}
		case frameRecords:
			if len(b)-pos < 4 {
				return frames
			}
			pos += 4 + int(le.Uint32(b[pos:]))*RecordSize
			if pos > len(b) {
				return frames
			}
		case frameCounters:
			pos += countersSize
			if pos > len(b) {
				return frames
			}
		default:
			return frames
		}
		frames++
	}
	return frames
}
