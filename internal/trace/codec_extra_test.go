package trace

import (
	"bytes"
	"testing"

	"timerstudy/internal/sim"
)

// buildEncoded returns a valid encoded trace for corruption tests.
func buildEncoded(t *testing.T, nrec int) []byte {
	t.Helper()
	b := NewBuffer(nrec)
	o := b.Origin("kernel/x")
	for i := 0; i < nrec; i++ {
		b.Log(Record{T: sim.Time(i), TimerID: 1, Op: OpSet, Origin: o, Timeout: int64(sim.Second)})
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRecordSizeGovernsEncoding pins the exported RecordSize constant to the
// bytes the encoder actually emits: header (20) + length-prefixed origins +
// RecordSize per record. DESIGN.md §"Trace format" quotes the same constant.
func TestRecordSizeGovernsEncoding(t *testing.T) {
	const nrec = 7
	b := NewBuffer(nrec)
	o := b.Origin("kernel/x")
	for i := 0; i < nrec; i++ {
		b.Log(Record{T: sim.Time(i), TimerID: 1, Op: OpSet, Origin: o})
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	originBytes := 0
	for _, name := range []string{"?", "kernel/x"} {
		originBytes += 4 + len(name)
	}
	want := 20 + originBytes + nrec*RecordSize
	if buf.Len() != want {
		t.Fatalf("encoded %d bytes, want %d (RecordSize=%d drifted from the encoder?)",
			buf.Len(), want, RecordSize)
	}
}

func TestDecodeTruncatedAtEveryBoundary(t *testing.T) {
	full := buildEncoded(t, 5)
	// Any strict prefix must fail cleanly, never panic or succeed.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("decoded a %d-byte prefix of %d bytes", cut, len(full))
		}
	}
	if _, err := Decode(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}

func TestDecodeRejectsImplausibleCounts(t *testing.T) {
	full := buildEncoded(t, 1)
	// Corrupt the record count to something absurd.
	for i := 8; i < 16; i++ {
		full[i] = 0xff
	}
	if _, err := Decode(bytes.NewReader(full)); err == nil {
		t.Fatal("accepted an implausible record count")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	full := buildEncoded(t, 1)
	full[4] = 99
	if _, err := Decode(bytes.NewReader(full)); err == nil {
		t.Fatal("accepted a future version")
	}
}

func TestEncodeDecodeLargeTrace(t *testing.T) {
	b := NewBuffer(50_000)
	for i := 0; i < 50_000; i++ {
		b.Log(Record{T: sim.Time(i), TimerID: uint64(i % 100), Op: Op(i % 4),
			Origin: b.Origin("o" + string(rune('a'+i%26)))})
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50_000 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := 0; i < 50_000; i += 9973 {
		if got.Records()[i] != b.Records()[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestOriginsSorted(t *testing.T) {
	b := NewBuffer(1)
	b.Origin("zzz")
	b.Origin("aaa")
	os := b.Origins()
	for i := 1; i < len(os); i++ {
		if os[i-1] > os[i] {
			t.Fatalf("unsorted: %v", os)
		}
	}
}
