package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"timerstudy/internal/sim"
)

// Binary trace file format:
//
//	header:  magic "TSTR" | version u32 | record count u64 | origin count u32
//	origins: per origin, length-prefixed (u32) UTF-8 bytes
//	records: RecordSize bytes each, little-endian, fields in struct order
//
// The format is self-contained: a decoded Buffer resolves origins exactly as
// the live one did.

const (
	magic   = "TSTR"
	version = 1
)

// RecordSize is the exact encoded size of one Record in bytes (fields in
// struct order plus padding to an 8-byte multiple). DESIGN.md §"Trace
// format" and DefaultCapacity both derive from this constant; a codec test
// asserts the encoder really emits records of this size.
const RecordSize = 40

// putRecord encodes one record into dst (the caller provides RecordSize
// bytes of scratch).
//
//lint:allocfree v2 record encoder: fixed-width stores into caller scratch
func putRecord(dst []byte, r Record) {
	le := binary.LittleEndian
	le.PutUint64(dst[0:], uint64(r.T))
	le.PutUint64(dst[8:], r.TimerID)
	le.PutUint64(dst[16:], uint64(r.Timeout))
	le.PutUint32(dst[24:], uint32(r.PID))
	le.PutUint32(dst[28:], r.Origin)
	dst[32] = byte(r.Op)
	le.PutUint16(dst[33:], uint16(r.Flags))
	// bytes 35..39 are padding, kept zero.
	dst[35], dst[36], dst[37], dst[38], dst[39] = 0, 0, 0, 0, 0
}

func getRecord(src []byte) Record {
	le := binary.LittleEndian
	return Record{
		T:       sim.Time(le.Uint64(src[0:])),
		TimerID: le.Uint64(src[8:]),
		Timeout: int64(le.Uint64(src[16:])),
		PID:     int32(le.Uint32(src[24:])),
		Origin:  le.Uint32(src[28:]),
		Op:      Op(src[32]),
		Flags:   Flags(le.Uint16(src[33:])),
	}
}

// Encode writes the buffer in the binary trace format.
func (b *Buffer) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [20]byte
	copy(hdr[0:], magic)
	le := binary.LittleEndian
	le.PutUint32(hdr[4:], version)
	le.PutUint64(hdr[8:], uint64(len(b.records)))
	le.PutUint32(hdr[16:], uint32(len(b.origins)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var lenbuf [4]byte
	for _, o := range b.origins {
		le.PutUint32(lenbuf[:], uint32(len(o)))
		if _, err := bw.Write(lenbuf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(o); err != nil {
			return err
		}
	}
	var rec [RecordSize]byte
	for _, r := range b.records {
		putRecord(rec[:], r)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxReasonable bounds header-declared counts (records, origins) so a
// corrupt header cannot drive huge allocations.
const maxReasonable = 1 << 28

// readMagicVersion consumes and validates the 8-byte magic+version prefix
// shared by every format version and returns the version.
func readMagicVersion(br *bufio.Reader) (uint32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[0:4]) != magic {
		return 0, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	return binary.LittleEndian.Uint32(hdr[4:]), nil
}

// Decode reads a v1 binary trace written by Encode into a fresh Buffer whose
// capacity equals the stored record count. Use Open to accept either format
// version.
func Decode(r io.Reader) (*Buffer, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	v, err := readMagicVersion(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return decodeV1(br)
}

// decodeV1 reads the remainder of a v1 trace after the magic+version prefix.
func decodeV1(br *bufio.Reader) (*Buffer, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	le := binary.LittleEndian
	nrec := le.Uint64(hdr[0:])
	norig := le.Uint32(hdr[8:])
	if nrec > maxReasonable || norig > maxReasonable {
		return nil, fmt.Errorf("trace: implausible header (records=%d origins=%d)", nrec, norig)
	}
	b := NewBuffer(int(nrec))
	var lenbuf [4]byte
	for i := uint32(0); i < norig; i++ {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading origin %d: %w", i, err)
		}
		n := le.Uint32(lenbuf[:])
		if n > 1<<16 {
			return nil, fmt.Errorf("trace: origin %d implausibly long (%d)", i, n)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("trace: reading origin %d: %w", i, err)
		}
		if i == 0 {
			continue // origin 0 ("?") pre-exists in a fresh buffer
		}
		b.Origin(string(name))
	}
	var rec [RecordSize]byte
	for i := uint64(0); i < nrec; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		b.Log(getRecord(rec[:]))
	}
	return b, nil
}
