module timerstudy

go 1.22
