// Powersave: Section 5.3's "better notion of time" as a power feature.
//
// A simulated appliance runs dozens of periodic housekeeping tasks. Three
// configurations show how expressing *imprecision* lets the system sleep:
//
//  1. the status quo: every timer precise, every expiry a CPU wakeup;
//
//  2. slack windows on the new facility: expiries batch into shared wakeups;
//
//  3. the Linux-style equivalents: dynticks plus round_jiffies.
//
//     go run ./examples/powersave
package main

import (
	"fmt"

	"timerstudy/internal/core"
	"timerstudy/internal/jiffies"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

const (
	nTasks   = 40
	duration = 5 * sim.Minute
)

// The housekeeping periods a real box runs: log flush, stats, cache trims...
var periods = []sim.Duration{
	sim.Second, 2 * sim.Second, 5 * sim.Second, sim.Second,
	3 * sim.Second, 2 * sim.Second, 10 * sim.Second, sim.Second,
}

func facilityRun(slackFraction float64) (wakeups uint64, ticks uint64, watts float64) {
	eng := sim.NewEngine(99)
	fac := core.New(core.SimBackend{Eng: eng})
	for i := 0; i < nTasks; i++ {
		period := periods[i%len(periods)]
		slack := sim.Duration(float64(period) * slackFraction)
		phase := sim.Duration(eng.Rand().Int63n(int64(period)))
		eng.After(phase, "start", func() {
			fac.NewTicker("task", period, slack, func() {})
		})
	}
	eng.Run(sim.Time(duration))
	return eng.Stats().Wakeups, fac.Stats().Fires, sim.LaptopPower().AveragePower(eng.Stats(), duration)
}

func jiffiesRun(round, nohz bool) (wakeups uint64, ticks uint64, watts float64) {
	eng := sim.NewEngine(99)
	base := jiffies.NewBase(eng, trace.NewBuffer(0), jiffies.WithNoHZ(nohz))
	for i := 0; i < nTasks; i++ {
		period := periods[i%len(periods)]
		t := &jiffies.Timer{}
		var rearm func()
		rearm = func() {
			dj := jiffies.MsecsToJiffies(period)
			if round {
				dj = base.RoundJiffiesRelative(dj)
			}
			base.Mod(t, base.Jiffies()+dj)
		}
		base.Init(t, "task", 0, rearm)
		eng.At(sim.Time(eng.Rand().Int63n(int64(period))), "start", rearm)
	}
	eng.Run(sim.Time(duration))
	return eng.Stats().Wakeups, base.TickCount, sim.LaptopPower().AveragePower(eng.Stats(), duration)
}

func main() {
	fmt.Printf("%d housekeeping tasks over %v of virtual time\n\n", nTasks, duration)

	pw, pf, pWatts := facilityRun(0)
	fmt.Printf("core facility, precise timers:   %6d wakeups (%d expiries)  ~%.2f W\n", pw, pf, pWatts)
	sw, sf, sWatts := facilityRun(0.3)
	fmt.Printf("core facility, 30%% slack:        %6d wakeups (%d expiries)  ~%.2f W  -> %.1fx fewer wakeups\n",
		sw, sf, sWatts, float64(pw)/float64(sw))

	fmt.Println()
	w1, t1, watts1 := jiffiesRun(false, false)
	fmt.Printf("jiffies, periodic tick:          %6d wakeups (%d tick interrupts)  ~%.2f W\n", w1, t1, watts1)
	w2, t2, watts2 := jiffiesRun(false, true)
	fmt.Printf("jiffies, dynticks:               %6d wakeups (%d tick interrupts)  ~%.2f W\n", w2, t2, watts2)
	w3, t3, watts3 := jiffiesRun(true, true)
	fmt.Printf("jiffies, dynticks+round_jiffies: %6d wakeups (%d tick interrupts)  ~%.2f W  -> %.1fx fewer than periodic\n",
		w3, t3, watts3, float64(w1)/float64(w3))
	fmt.Printf("\n(%s)\n", sim.LaptopPower())

	fmt.Println("\nEvery avoided wakeup is time the CPU (or disk) can stay in a low-power")
	fmt.Println("state — the concern that motivated round_jiffies, deferrable timers and")
	fmt.Println("dynticks (Section 2.1), generalized by the slack-window specification.")
}
