package main

import "timerstudy/internal/sim"

// userDeadline: the user-level budget handed to OpenShare — the "how long a
// person will stare at a file browser" figure the budgeted policy propagates
// through every layer (paper Section 5.2).
const userDeadline = 5 * sim.Second
