// Fileshare: the Section 2.2.2 story, runnable.
//
// A user types a server name into the file browser. Name resolution fans
// out to WINS, DNS and NetBT; the connection fans out to SMB, NFS (over
// SunRPC, 7 retries doubling from 500 ms) and WebDAV; TCP adds its own
// exponential SYN backoff underneath. Although the server — when healthy —
// answers within a ~130 ms round trip, the static layering needs over a
// minute to admit that a dead host is dead.
//
//	go run ./examples/fileshare
package main

import (
	"fmt"

	"timerstudy/internal/layers"
)

func main() {
	fmt.Println("Opening \\\\server\\share under three timeout policies")
	fmt.Println("(healthy server RTT: ~130 ms)")
	fmt.Println()
	fmt.Printf("%-10s %-16s %-8s %-16s %s\n", "policy", "target", "result", "time-to-report", "decided by")

	for _, policy := range []layers.Policy{layers.Static, layers.Budgeted, layers.Adaptive} {
		for _, target := range []string{layers.FileServer, layers.DeadHost, layers.BadName} {
			w := layers.NewWorld(1)
			if policy == layers.Adaptive {
				// A deployed system has history; warm the estimators.
				w.Warm(10)
			}
			o := w.OpenShare(policy, target, userDeadline)
			status := "ERROR"
			if o.OK {
				status = "ok"
			}
			fmt.Printf("%-10s %-16s %-8s %-16v %s\n", policy, target, status, o.Elapsed, o.Detail)
		}
		fmt.Println()
	}

	fmt.Println("static   : the paper's observation — \"recovering from a typing error")
	fmt.Println("           can take over a minute!\" (TCP's 93 s SYN backoff is the last")
	fmt.Println("           layer standing).")
	fmt.Println("budgeted : one user-level deadline propagates through every layer")
	fmt.Println("           (Section 5.2 provenance): errors surface exactly on budget.")
	fmt.Println("adaptive : each layer times out at the 99% quantile of its own observed")
	fmt.Println("           latency (Section 5.1): errors surface in seconds, with no")
	fmt.Println("           configuration at all.")
}
