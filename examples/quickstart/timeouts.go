package main

import "timerstudy/internal/sim"

// The quickstart's timeout registry. The demo compresses the paper's use
// cases into a four-second run, so each value below is chosen for narrative
// pacing — short enough to watch, long enough to distinguish the idioms.
const (
	// tickPeriod: housekeeping cadence; 1 s makes each tick visible in the run.
	tickPeriod = sim.Second
	// tickSlack: 20% slack so the ticker can batch with other imprecise timers.
	tickSlack = 200 * sim.Millisecond
	// fetchDeadline: the guarded operation's deadline; must exceed fetchDone so the demo completes in time.
	fetchDeadline = 1500 * sim.Millisecond
	// fetchSlack: 10% window on the guard — a timeout this coarse never needs an exact deadline.
	fetchSlack = 150 * sim.Millisecond
	// fetchDone: when the guarded operation finishes — comfortably inside fetchDeadline.
	fetchDone = 700 * sim.Millisecond
	// watchdogInterval: heartbeat watchdog period; fires only after beats stop at 2 s.
	watchdogInterval = 800 * sim.Millisecond
	// heartbeatGap: beat spacing, well under watchdogInterval so the watchdog stays quiet.
	heartbeatGap = 300 * sim.Millisecond
	// deferredQuiet: quiet period before the deferred close runs, outlasting the 900 ms of touches.
	deferredQuiet = sim.Second
	// lookupPrimary: the longer of the two declared-overlapping lookup timeouts.
	lookupPrimary = 10 * sim.Second
	// lookupFallback: the shorter overlapping timeout; EitherMayExpire arms only one.
	lookupFallback = 2 * sim.Second
	// lookupRun: extra run time for the overlapping-lookup act of the demo.
	lookupRun = 3 * sim.Second
)
