// Quickstart: a tour of the timerstudy core facility — the redesigned timer
// subsystem of the paper's Section 5 — on a deterministic simulated clock.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"timerstudy/internal/core"
	"timerstudy/internal/sim"
)

func main() {
	eng := sim.NewEngine(42)
	fac := core.New(core.SimBackend{Eng: eng})

	fmt.Println("== use-case interfaces (Section 5.4) ==")

	// A periodic ticker: drift-free, with slack so it can batch with other
	// imprecise timers.
	ticker := fac.NewTicker("demo/housekeeping", tickPeriod, tickSlack, func() {
		fmt.Printf("  [%v] housekeeping tick\n", eng.Now())
	})

	// A timeout guard around an "operation": the Win32 auto-object idiom,
	// but with a coalescable window instead of the legacy exact deadline.
	guard := fac.NewGuard(nil, "demo/fetch", core.Window(fetchDeadline, fetchSlack), func() {
		fmt.Printf("  [%v] fetch TIMED OUT\n", eng.Now())
	})
	eng.After(fetchDone, "fetch-done", func() {
		if guard.Done() {
			fmt.Printf("  [%v] fetch completed before its deadline\n", eng.Now())
		}
	})

	// A watchdog kicked by activity: fires only when the activity stops.
	wd := fac.NewWatchdog("demo/heartbeat", watchdogInterval, 0, func() {
		fmt.Printf("  [%v] WATCHDOG: heartbeats stopped\n", eng.Now())
	})
	var beat func()
	beat = func() {
		wd.Kick()
		if eng.Now() < sim.Time(2*sim.Second) {
			eng.After(heartbeatGap, "beat", beat)
		}
	}
	eng.After(0, "beat", beat)

	// A deferred action: runs after the resource has been quiet for 1 s.
	lazy := fac.NewDeferred("demo/lazy-close", deferredQuiet, 0, func() {
		fmt.Printf("  [%v] closing idle handles (deferred work)\n", eng.Now())
	})
	for _, at := range []sim.Duration{100, 400, 900} {
		eng.After(at*sim.Millisecond, "touch", lazy.Touch)
	}

	eng.Run(sim.Time(4 * sim.Second))
	ticker.Stop()

	fmt.Println("\n== adaptive timeouts (Section 5.1) ==")
	adapt := fac.NewAdaptiveTimeout("demo/rpc", 0.99, sim.Millisecond, 30*sim.Second)
	fmt.Printf("  cold timeout (no history): %v\n", adapt.Current())
	for i := 0; i < 200; i++ {
		adapt.ObserveSuccess(sim.Duration(8+i%5) * sim.Millisecond)
	}
	fmt.Printf("  after 200 observed ~10 ms calls: %v (vs the arbitrary 30 s)\n", adapt.Current())
	fmt.Printf("  3rd retry would use: %v (exponential backoff)\n", adapt.CurrentRetry(2))

	fmt.Println("\n== declared timer relations (Section 5.2) ==")
	fac.ArmOverlapping(core.EitherMayExpire, "demo/lookup", lookupPrimary, lookupFallback, func(which int) {
		fmt.Printf("  [%v] lookup timeout %d fired (the other was never armed)\n", eng.Now(), which)
	})
	eng.Run(eng.Now().Add(lookupRun))

	st := fac.Stats()
	fmt.Printf("\nfacility stats: %d arms, %d fires, %d cancels, %d wakeups (%d coalesced, %d elided)\n",
		st.Arms, st.Fires, st.Cancels, st.Wakeups, st.Coalesced, st.Elided)
}
