package main

import "timerstudy/internal/sim"

// The demo's timeout registry: the A/V cadences come straight from the
// paper's soft-real-time observations (Skype audio at 20 ms, video around
// 30 fps), and the dispatcher declarations attach the windows and budgets
// Section 5.5 argues temporal requirements should carry.
const (
	// audioFrameInterval: the 20 ms VoIP audio cadence of the Skype traces.
	audioFrameInterval = 20 * sim.Millisecond
	// videoPollTimeout: the poll-loop approximation of the ~33 ms video frame — 8 jiffies, as traced.
	videoPollTimeout = 32 * sim.Millisecond
	// videoFrameInterval: the declared video cadence (30 fps).
	videoFrameInterval = 33 * sim.Millisecond
	// audioWindow: ±5 ms tolerable dispatch slack for audio — a jitter-buffer frame fits it.
	audioWindow = 5 * sim.Millisecond
	// audioBudget: ~2 ms of CPU per audio frame, declared to the dispatcher.
	audioBudget = 2 * sim.Millisecond
	// videoWindow: ±12 ms tolerable dispatch slack for video — under half a frame.
	videoWindow = 12 * sim.Millisecond
	// videoBudget: ~4 ms of CPU per video frame, declared to the dispatcher.
	videoBudget = 4 * sim.Millisecond
)
