// Dispatcher: the paper's Section 5.5 endgame — no timer interface at all.
//
// A Skype-like soft-real-time pipeline (audio every 20 ms, video every
// 33 ms) is built twice:
//
//  1. the way the study observed real applications doing it: poll loops
//     with 1-3-jiffy timeouts hammering the kernel timer subsystem
//     (thousands of accesses per second, Figure 9/10);
//
//  2. with temporal requirements declared directly to the CPU dispatcher:
//     "run this code every 20 ms, ±5 ms, it needs ~2 ms" — zero timer
//     accesses, explicit deadline accounting, batched activations.
//
//     go run ./examples/dispatcher
package main

import (
	"fmt"

	"timerstudy/internal/analysis"
	"timerstudy/internal/dispatch"
	"timerstudy/internal/kernel"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

const runFor = 30 * sim.Second

func pollLoopVersion() {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 20)
	lx := kernel.NewLinux(eng, tr)
	app := lx.NewProcess("softrt-app")

	frames := 0
	audio := app.NewThread()
	var audioLoop func()
	audioLoop = func() {
		// The observed idiom: poll with a short timeout approximating the
		// frame cadence, spin until the deadline.
		audio.Poll(audioFrameInterval, func(kernel.SelectResult) {
			frames++
			audioLoop()
		})
	}
	audioLoop()
	video := app.NewThread()
	var videoLoop func()
	videoLoop = func() {
		video.Poll(videoPollTimeout, func(kernel.SelectResult) { videoLoop() })
	}
	videoLoop()
	eng.Run(sim.Time(runFor))

	s := analysis.Summarize(tr)
	fmt.Printf("poll-loop version:   %5d audio frames, %6d timer-subsystem accesses (%.0f/s), %6d CPU wakeups\n",
		frames, s.Accesses, float64(s.Accesses)/runFor.Seconds(), eng.Stats().Wakeups)
	fmt.Printf("                     deadline adherence: unknown — the kernel has no idea what the app wanted\n")
}

func dispatcherVersion() {
	eng := sim.NewEngine(1)
	sched := dispatch.NewScheduler(eng)
	audio := sched.NewTask("audio", 4)
	video := sched.NewTask("video", 1)
	frames := 0
	audio.Periodic(audioFrameInterval, audioWindow, audioBudget, func(c dispatch.Context) {
		frames++
	})
	video.Periodic(videoFrameInterval, videoWindow, videoBudget, func(dispatch.Context) {})
	eng.Run(sim.Time(runFor))

	st := sched.Stats()
	fmt.Printf("dispatcher version:  %5d audio frames, %6d timer-subsystem accesses, %6d scheduler activations\n",
		frames, 0, st.Wakeups)
	fmt.Printf("                     deadline adherence: %d/%d dispatches missed their window\n",
		st.Misses, st.Dispatches)
}

func main() {
	fmt.Printf("A soft-real-time A/V pipeline, two ways (%v of virtual time):\n\n", runFor)
	pollLoopVersion()
	fmt.Println()
	dispatcherVersion()
	fmt.Println()
	fmt.Println("The timer-interface version tells the kernel nothing about intent, so the")
	fmt.Println("study's traces show it as an unclassifiable storm of 1-3 jiffy timeouts.")
	fmt.Println("Declaring \"what code, when, how much CPU\" to the dispatcher removes the")
	fmt.Println("timer traffic entirely and makes temporal behaviour observable — the")
	fmt.Println("direction Section 5.5 argues for.")
}
