// Adaptiverpc: "30 seconds is not enough — and also far too much."
//
// An RPC client calls a server over a link that (a) works, (b) degrades,
// and (c) dies. Two clients run side by side: one with the classic fixed
// 30-second timeout, one with the paper's Section 5.1 proposal — time out
// once the system is 99% confident the reply is never coming.
//
//	go run ./examples/adaptiverpc
package main

import (
	"fmt"

	"timerstudy/internal/core"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
)

func main() {
	eng := sim.NewEngine(7)
	net := netsim.NewNetwork(eng)
	fac := core.New(core.SimBackend{Eng: eng})

	// An RPC server: answers each request after a small service time.
	net.Attach("server", func(p netsim.Packet) {
		if req, ok := p.Payload.(int); ok {
			eng.After(serviceTime, "serve", func() {
				net.Send(netsim.Packet{From: "server", To: "client", Size: 100, Payload: -req})
			})
		}
	})
	pending := map[int]func(){}
	net.Attach("client", func(p netsim.Packet) {
		if resp, ok := p.Payload.(int); ok {
			if cb := pending[-resp]; cb != nil {
				delete(pending, -resp)
				cb()
			}
		}
	})
	net.SetPath("client", "server", netsim.PathConfig{
		Latency: 60 * sim.Millisecond, Jitter: 20 * sim.Millisecond,
	})

	adaptive := fac.NewAdaptiveTimeout("rpc", 0.99, 10*sim.Millisecond, fixedTimeout)

	nextID := 0
	call := func(done func(ok bool, lat sim.Duration)) {
		nextID++
		id := nextID
		sent := eng.Now()
		finished := false
		pending[id] = func() {
			if finished {
				return
			}
			finished = true
			done(true, eng.Now().Sub(sent))
		}
		net.Send(netsim.Packet{From: "client", To: "server", Size: 100, Payload: id})
		// The caller's own guard decides when to give up; here we let the
		// *caller* choose fixed or adaptive.
		_ = sent
	}

	fmt.Println("phase 1: healthy link, 300 calls train the estimator")
	ok := 0
	for i := 0; i < 300; i++ {
		eng.After(sim.Duration(i)*50*sim.Millisecond, "call", func() {
			start := eng.Now()
			g := adaptive.Arm(func() {})
			call(func(o bool, lat sim.Duration) {
				if g.Done() {
					ok++
					adaptive.ObserveSuccess(lat)
				}
				_ = start
			})
		})
	}
	eng.Run(eng.Now().Add(trainRun))
	fmt.Printf("  %d/300 calls succeeded; learned 99%% timeout: %v (fixed: %v)\n", ok, adaptive.Current(), fixedTimeout)

	fmt.Println("\nphase 2: the server dies; both clients have one call outstanding")
	net.SetPath("client", "server", netsim.PathConfig{Latency: 60 * sim.Millisecond, Loss: 1})
	start := eng.Now()
	var adaptiveDetect, fixedDetect sim.Duration
	// Adaptive client
	g := adaptive.Arm(func() { adaptiveDetect = eng.Now().Sub(start) })
	call(func(bool, sim.Duration) { _ = g.Done() })
	// Fixed client
	//lint:ignore exactspec the exact 30 s deadline IS the legacy behavior this demo measures
	fg := fac.NewGuard(nil, "fixed-rpc", core.Exact(fixedTimeout), func() { fixedDetect = eng.Now().Sub(start) })
	call(func(bool, sim.Duration) { _ = fg.Done() })
	eng.Run(eng.Now().Add(failRun))
	fmt.Printf("  adaptive client detected the failure after %v\n", adaptiveDetect)
	fmt.Printf("  fixed client detected the failure after    %v\n", fixedDetect)
	fmt.Printf("  => %.0fx faster failure detection\n", float64(fixedDetect)/float64(adaptiveDetect))

	fmt.Println("\nphase 3: the link recovers but is now 10x slower (WAN): the estimator re-learns")
	net.SetPath("client", "server", netsim.PathConfig{Latency: 600 * sim.Millisecond, Jitter: 200 * sim.Millisecond})
	recovered, late := 0, 0
	for i := 0; i < 200; i++ {
		eng.After(sim.Duration(i)*100*sim.Millisecond, "call", func() {
			g := adaptive.Arm(func() {})
			call(func(o bool, lat sim.Duration) {
				if g.Done() {
					recovered++
					adaptive.ObserveSuccess(lat)
				} else {
					// The call was already reported timed out, but the
					// reply arrived late. Section 5.1: the timer system
					// must "continue monitoring for the event that was
					// being waited for" — late arrivals are exactly the
					// samples that teach the estimator about the new
					// latency regime. Without this, the shorter learned
					// timeout would lock the client out forever.
					late++
					adaptive.ObserveSuccess(lat)
				}
			})
		})
	}
	eng.Run(eng.Now().Add(relearnRun))
	fmt.Printf("  %d/200 calls succeeded in time, %d replies arrived late and re-trained the model\n", recovered, late)
	fmt.Printf("  timeout re-learned to %v (level shifts detected: %d)\n",
		adaptive.Current(), adaptive.Estimator().Shifts)
}
