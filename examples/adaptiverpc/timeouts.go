package main

import "timerstudy/internal/sim"

// The demo's timeout registry (paper Section 5.2: every timeout carries its
// provenance).
const (
	// fixedTimeout: the classic hard-coded 30 s RPC timeout — the status-quo
	// value the paper's title argues about; it is the baseline under study.
	fixedTimeout = 30 * sim.Second
	// serviceTime: the server's per-request service time; small against the 60 ms path latency.
	serviceTime = 2 * sim.Millisecond
	// trainRun: phase-1 run window — 300 calls at 50 ms spacing plus drain time.
	trainRun = 20 * sim.Second
	// failRun: phase-2 run window — long enough for the fixed 30 s client to finally notice the dead server.
	failRun = 2 * sim.Minute
	// relearnRun: phase-3 run window — 200 calls at 100 ms spacing plus drain time on the slow link.
	relearnRun = 60 * sim.Second
)
