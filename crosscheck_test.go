package timerstudy

import (
	"testing"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
	"timerstudy/internal/workloads"
)

// crosscheckDuration keeps the nine-trace sweep fast while still producing
// tens of thousands of records per trace.
const crosscheckDuration = 60 * sim.Second

// TestSummarizeMatchesLifecycles pins the two counting paths to each other
// on every evaluation workload: the summary's raw-record totals must equal
// the same quantities derived from the reconstructed per-timer uses. Before
// the two were unified into one walk they could drift silently; this keeps
// them honest even if they ever diverge again.
func TestSummarizeMatchesLifecycles(t *testing.T) {
	specs := workloads.EvaluationSpecs(workloads.Config{Seed: 1, Duration: crosscheckDuration})
	workloads.ForEach(specs, 0, func(_ int, res *workloads.Result) {
		s := analysis.Summarize(res.Trace)
		var sets, expires, cancels, ops uint64
		var timers int
		for _, tl := range analysis.Lifecycles(res.Trace) {
			timers++
			ops += uint64(tl.Ops)
			sets += uint64(len(tl.Uses))
			cancels += uint64(tl.NoopCancels)
			expires += uint64(tl.OrphanExpires)
			for _, u := range tl.Uses {
				switch u.End {
				case analysis.EndExpired:
					expires++
				case analysis.EndCanceled:
					cancels++
				}
			}
		}
		if sets != s.Set || expires != s.Expired || cancels != s.Canceled {
			t.Errorf("%s/%s: use-derived set/expire/cancel = %d/%d/%d, summary says %d/%d/%d",
				res.OS, res.Name, sets, expires, cancels, s.Set, s.Expired, s.Canceled)
		}
		if ops != s.Accesses {
			t.Errorf("%s/%s: use-derived accesses = %d, summary says %d",
				res.OS, res.Name, ops, s.Accesses)
		}
		if timers != s.Timers {
			t.Errorf("%s/%s: lifecycle count = %d, summary says %d timers",
				res.OS, res.Name, timers, s.Timers)
		}
		if s.Set == 0 {
			t.Errorf("%s/%s: empty trace, cross-check vacuous", res.OS, res.Name)
		}
	})
}

// TestPipelineMatchesLegacyOnWorkload re-runs the drift guard on a real
// workload trace (the synthetic-trace version lives in internal/analysis).
func TestPipelineMatchesLegacyOnWorkload(t *testing.T) {
	res := workloads.RunLinux(workloads.Webserver, workloads.Config{Seed: 1, Duration: crosscheckDuration})
	sOpts := analysis.DefaultScatterOptions()
	sOpts.ExcludeProcesses = []string{"Xorg", "icewm"}
	vPlain := analysis.ValueOptions{JiffyBinKernel: true, MinSharePercent: 2}
	rep, err := analysis.Pipeline{
		Values: vPlain, Scatter: &sOpts, OriginMinSets: 50,
	}.Run(res.Trace)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	ls := analysis.Lifecycles(res.Trace)
	if got, want := rep.Summary, analysis.Summarize(res.Trace); got != want {
		t.Fatalf("summary drift: %+v != %+v", got, want)
	}
	wantV, wantT := analysis.CommonValues(ls, vPlain)
	if rep.ValuesTotal != wantT || len(rep.Values) != len(wantV) {
		t.Fatalf("values drift: %d entries/%d total vs %d/%d",
			len(rep.Values), rep.ValuesTotal, len(wantV), wantT)
	}
	for i := range wantV {
		if rep.Values[i] != wantV[i] {
			t.Fatalf("values[%d] drift: %+v != %+v", i, rep.Values[i], wantV[i])
		}
	}
	wantS := analysis.Scatter(ls, sOpts)
	if len(rep.Scatter) != len(wantS) {
		t.Fatalf("scatter drift: %d points vs %d", len(rep.Scatter), len(wantS))
	}
	for i := range wantS {
		if rep.Scatter[i] != wantS[i] {
			t.Fatalf("scatter[%d] drift: %+v != %+v", i, rep.Scatter[i], wantS[i])
		}
	}
	wantO := analysis.OriginTable(ls, 50)
	if len(rep.Origins) != len(wantO) {
		t.Fatalf("origins drift: %d rows vs %d", len(rep.Origins), len(wantO))
	}
	for i := range wantO {
		if rep.Origins[i] != wantO[i] {
			t.Fatalf("origins[%d] drift: %+v != %+v", i, rep.Origins[i], wantO[i])
		}
	}
}
